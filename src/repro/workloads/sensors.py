"""Sensor-network workload: small messages at high frequency.

The paper's introduction: "for the other ones, such as wide-scale wireless
sensor networks, small data messages are transmitted between the machines
but at very high frequency and on real-time demand" — the regime where
Figure 4 shows the separated schemes losing badly and even XML/HTTP being
competitive only at the very smallest sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.xdm.builder import array, element, leaf
from repro.xdm.nodes import ElementNode


@dataclass(frozen=True)
class SensorReading:
    """One station's reading: identity, tick, and a handful of channels."""

    station: int
    tick: int
    channels: np.ndarray  #: float32, a few entries (temp, rh, wind, ...)

    def to_bxdm(self) -> ElementNode:
        return element(
            "reading",
            leaf("station", int(self.station), "int"),
            leaf("tick", int(self.tick), "long"),
            array("channels", self.channels, item_name="c"),
        )

    @classmethod
    def from_bxdm(cls, node: ElementNode) -> "SensorReading":
        from repro.xdm.path import children_named

        return cls(
            station=children_named(node, "station")[0].value,
            tick=children_named(node, "tick")[0].value,
            channels=np.asarray(children_named(node, "channels")[0].values, dtype="f4"),
        )


def sensor_stream(
    n_messages: int,
    *,
    n_stations: int = 16,
    n_channels: int = 8,
    seed: int = 0,
) -> Iterator[SensorReading]:
    """Deterministic stream of small readings (round-robin stations)."""
    rng = np.random.default_rng(seed)
    for tick in range(n_messages):
        yield SensorReading(
            station=tick % n_stations,
            tick=tick,
            channels=np.round(rng.normal(20.0, 5.0, n_channels), 2).astype("f4"),
        )
