"""XBS: a streaming binary serializer for primitive types.

XBS (Chiu, HPC Symposium 2004) is the bottom layer of the BXSA stack.  It is a
minimalistic format that packs fundamental types into a byte sequence:

* 1-, 2-, 4- and 8-byte signed and unsigned integers,
* 4- and 8-byte IEEE 754 floating-point numbers,
* packed one-dimensional arrays of any of the above,
* variable-length size integers ("VLS") used by BXSA frame headers.

All multi-byte numbers are aligned to a multiple of their own size (relative
to the start of the stream), and both little-endian and big-endian encodings
are supported so that a reader can consume frames produced on either kind of
host without byte-swapping its own native data.

The public surface is :class:`XBSWriter`, :class:`XBSReader`, the
:mod:`~repro.xbs.varint` helpers and the :mod:`~repro.xbs.constants` type-code
registry.
"""

from repro.xbs.constants import (
    BIG_ENDIAN,
    LITTLE_ENDIAN,
    NATIVE_ENDIAN,
    TypeCode,
    dtype_for,
    type_code_for_dtype,
)
from repro.xbs.errors import XBSError, XBSDecodeError, XBSEncodeError
from repro.xbs.reader import XBSReader
from repro.xbs.varint import decode_vls, encode_vls, vls_length
from repro.xbs.writer import XBSWriter

__all__ = [
    "BIG_ENDIAN",
    "LITTLE_ENDIAN",
    "NATIVE_ENDIAN",
    "TypeCode",
    "XBSDecodeError",
    "XBSEncodeError",
    "XBSError",
    "XBSReader",
    "XBSWriter",
    "decode_vls",
    "dtype_for",
    "encode_vls",
    "type_code_for_dtype",
    "vls_length",
]
