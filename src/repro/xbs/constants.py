"""Type codes and byte-order constants shared by the XBS and BXSA layers.

XBS supports exactly the primitive types the paper enumerates (1/2/4/8-byte
integers and 4/8-byte floats).  We additionally register the unsigned integer
widths; BXSA uses ``UINT8`` for raw octet payloads (the counterpart of Fast
Infoset's octet information item mentioned in the paper's related work).
"""

from __future__ import annotations

import enum
import sys

import numpy as np

#: Byte-order markers.  These values double as the 2-bit ``byte-order`` field
#: of the BXSA Common Frame Prefix, so they must stay in ``{0, 1}``.
LITTLE_ENDIAN = 0
BIG_ENDIAN = 1

#: The byte order of the running interpreter, expressed as one of the two
#: markers above.
NATIVE_ENDIAN = LITTLE_ENDIAN if sys.byteorder == "little" else BIG_ENDIAN

_ENDIAN_CHAR = {LITTLE_ENDIAN: "<", BIG_ENDIAN: ">"}


class TypeCode(enum.IntEnum):
    """Wire identifiers for XBS primitive types.

    The integer values appear on the wire (as the type-code byte of BXSA
    leaf/array frames), so they are part of the format and must not be
    renumbered.
    """

    INT8 = 0x01
    INT16 = 0x02
    INT32 = 0x03
    INT64 = 0x04
    UINT8 = 0x05
    UINT16 = 0x06
    UINT32 = 0x07
    UINT64 = 0x08
    FLOAT32 = 0x09
    FLOAT64 = 0x0A
    #: Not a numeric type: marks a UTF-8 string value (used by BXSA for
    #: attribute and leaf values that carry text).  Strings are written as a
    #: VLS byte count followed by the raw bytes, and are never padded.
    STRING = 0x0B
    #: A boolean stored as a single byte (0 or 1).
    BOOL = 0x0C

    @property
    def size(self) -> int:
        """Byte width of one value of this type (1 for STRING placeholders)."""
        return _SIZES[self]

    @property
    def is_numeric(self) -> bool:
        return self not in (TypeCode.STRING,)


_SIZES = {
    TypeCode.INT8: 1,
    TypeCode.INT16: 2,
    TypeCode.INT32: 4,
    TypeCode.INT64: 8,
    TypeCode.UINT8: 1,
    TypeCode.UINT16: 2,
    TypeCode.UINT32: 4,
    TypeCode.UINT64: 8,
    TypeCode.FLOAT32: 4,
    TypeCode.FLOAT64: 8,
    TypeCode.STRING: 1,
    TypeCode.BOOL: 1,
}

_DTYPE_KIND = {
    TypeCode.INT8: "i1",
    TypeCode.INT16: "i2",
    TypeCode.INT32: "i4",
    TypeCode.INT64: "i8",
    TypeCode.UINT8: "u1",
    TypeCode.UINT16: "u2",
    TypeCode.UINT32: "u4",
    TypeCode.UINT64: "u8",
    TypeCode.FLOAT32: "f4",
    TypeCode.FLOAT64: "f8",
    TypeCode.BOOL: "u1",
}

_CODE_BY_KIND = {kind: code for code, kind in _DTYPE_KIND.items() if code != TypeCode.BOOL}


def dtype_for(code: TypeCode, byte_order: int = NATIVE_ENDIAN) -> np.dtype:
    """Return the numpy dtype for a numeric type code in a given byte order.

    Raises :class:`KeyError` for ``STRING``, which has no fixed-width dtype.
    """
    kind = _DTYPE_KIND[TypeCode(code)]
    if kind.endswith("1"):
        return np.dtype(kind)  # single-byte types have no byte order
    return np.dtype(_ENDIAN_CHAR[byte_order] + kind)


def type_code_for_dtype(dtype: np.dtype | type | str) -> TypeCode:
    """Map a numpy dtype (or anything coercible to one) to its XBS type code.

    Raises :class:`~repro.xbs.errors.XBSEncodeError` for dtypes XBS cannot
    represent (e.g. complex, object, structured dtypes).
    """
    from repro.xbs.errors import XBSEncodeError

    dt = np.dtype(dtype)
    if dt.kind == "b":
        return TypeCode.BOOL
    key = dt.kind + str(dt.itemsize)
    try:
        return _CODE_BY_KIND[key]
    except KeyError:
        raise XBSEncodeError(f"dtype {dt!r} is not representable in XBS") from None
