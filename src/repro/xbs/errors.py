"""Exception hierarchy for the XBS serializer."""


class XBSError(Exception):
    """Base class for all XBS errors."""


class XBSEncodeError(XBSError):
    """Raised when a value cannot be represented in the XBS format."""


class XBSDecodeError(XBSError):
    """Raised when a byte stream is not a valid XBS encoding.

    This covers truncated input, unknown type codes and malformed
    variable-length integers.
    """
