"""Streaming XBS reader.

The reader mirrors :class:`~repro.xbs.writer.XBSWriter` byte for byte: it
tracks the same stream-relative alignment rule and exposes zero-copy numpy
views over packed array payloads, which is the Python analogue of the paper's
memory-mapped ArrayElement I/O.
"""

from __future__ import annotations

import numpy as np

from repro.xbs.constants import (
    _ENDIAN_CHAR,
    NATIVE_ENDIAN,
    TypeCode,
    dtype_for,
)
from repro.xbs.errors import XBSDecodeError
from repro.xbs.structcache import struct_for, struct_for_run
from repro.xbs.varint import decode_vls


class XBSReader:
    """Consume an XBS byte stream produced by :class:`XBSWriter`.

    Parameters
    ----------
    data:
        The encoded bytes.  A ``memoryview`` is taken, so slices handed out
        by :meth:`read_array` alias the caller's buffer rather than copying.
    byte_order:
        Must match the writer's byte order.  (BXSA records the order in each
        frame's Common Frame Prefix and constructs readers accordingly.)
    align:
        Must match the writer's alignment setting.
    base:
        Stream offset of ``data[0]`` relative to the alignment origin.  BXSA
        decodes frames from the middle of documents, so it passes the frame
        payload's absolute offset here to keep alignment arithmetic correct.
    """

    def __init__(
        self,
        data,
        byte_order: int = NATIVE_ENDIAN,
        *,
        align: bool = True,
        base: int = 0,
    ) -> None:
        if byte_order not in (0, 1):
            raise XBSDecodeError(f"invalid byte order {byte_order!r}")
        self._data = memoryview(data)
        self.byte_order = byte_order
        self.align_enabled = align
        self._base = base
        self._pos = 0
        self._endian_char = _ENDIAN_CHAR[byte_order]

    # ------------------------------------------------------------------
    # positioning

    def tell(self) -> int:
        """Current read offset within ``data`` (not including ``base``)."""
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def seek(self, pos: int) -> None:
        if not 0 <= pos <= len(self._data):
            raise XBSDecodeError(f"seek to {pos} outside stream of {len(self._data)} bytes")
        self._pos = pos

    def skip(self, nbytes: int) -> None:
        self._require(nbytes)
        self._pos += nbytes

    def align(self, size: int) -> None:
        """Skip the pad bytes the writer inserted before a ``size``-aligned value."""
        if not self.align_enabled or size <= 1:
            return
        rem = (self._base + self._pos) % size
        if rem:
            self.skip(size - rem)

    def _require(self, nbytes: int) -> None:
        if self._pos + nbytes > len(self._data):
            raise XBSDecodeError(
                f"truncated stream: need {nbytes} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )

    # ------------------------------------------------------------------
    # scalar reads

    def read_scalar(self, code: TypeCode):
        """Read one scalar of the given type code as a Python int/float/str."""
        code = TypeCode(code)
        if code is TypeCode.STRING:
            return self.read_string()
        self.align(code.size)
        self._require(code.size)
        (value,) = struct_for(self.byte_order, code).unpack_from(self._data, self._pos)
        self._pos += code.size
        if code is TypeCode.BOOL:
            return bool(value)
        return value

    def read_scalars(self, code: TypeCode, count: int) -> tuple:
        """Read a homogeneous run written by :meth:`XBSWriter.write_scalars`.

        One bulk ``unpack_from`` over a zero-copy view of the stream; the
        result is a tuple of Python scalars in stream order.  Alignment is
        consumed once up front, mirroring the writer's single align.
        """
        code = TypeCode(code)
        if code is TypeCode.STRING:
            raise XBSDecodeError("read_scalars cannot read STRING runs")
        if count < 0:
            raise XBSDecodeError(f"negative run count {count}")
        if count == 0:
            return ()
        self.align(code.size)
        run = struct_for_run(self.byte_order, code, count)
        self._require(run.size)
        values = run.unpack_from(self._data, self._pos)
        self._pos += run.size
        if code is TypeCode.BOOL:
            return tuple(bool(v) for v in values)
        return values

    def read_int8(self) -> int:
        return self.read_scalar(TypeCode.INT8)

    def read_int16(self) -> int:
        return self.read_scalar(TypeCode.INT16)

    def read_int32(self) -> int:
        return self.read_scalar(TypeCode.INT32)

    def read_int64(self) -> int:
        return self.read_scalar(TypeCode.INT64)

    def read_uint8(self) -> int:
        return self.read_scalar(TypeCode.UINT8)

    def read_uint16(self) -> int:
        return self.read_scalar(TypeCode.UINT16)

    def read_uint32(self) -> int:
        return self.read_scalar(TypeCode.UINT32)

    def read_uint64(self) -> int:
        return self.read_scalar(TypeCode.UINT64)

    def read_float32(self) -> float:
        return self.read_scalar(TypeCode.FLOAT32)

    def read_float64(self) -> float:
        return self.read_scalar(TypeCode.FLOAT64)

    # ------------------------------------------------------------------
    # variable-size reads

    def read_vls(self) -> int:
        value, new_pos = decode_vls(self._data, self._pos)
        self._pos = new_pos
        return value

    def read_bytes(self, nbytes: int) -> memoryview:
        """Return a zero-copy view of the next ``nbytes`` bytes."""
        self._require(nbytes)
        view = self._data[self._pos : self._pos + nbytes]
        self._pos += nbytes
        return view

    def read_string(self) -> str:
        nbytes = self.read_vls()
        raw = self.read_bytes(nbytes)
        try:
            return str(raw, "utf-8")
        except UnicodeDecodeError as exc:
            raise XBSDecodeError(f"invalid UTF-8 in string payload: {exc}") from exc

    # ------------------------------------------------------------------
    # array reads

    def read_scalars_into(self, code: TypeCode, out: np.ndarray) -> np.ndarray:
        """Read a homogeneous run into the preallocated array ``out``.

        The bulk counterpart of :meth:`read_scalars` for numeric consumers:
        one vectorized copy from the stream into a caller-owned buffer
        (native order, any dtype numpy can safely cast the wire values to),
        no per-element Python objects.  ``out.size`` determines the run
        length.  Returns ``out``.
        """
        code = TypeCode(code)
        if code is TypeCode.STRING:
            raise XBSDecodeError("read_scalars_into cannot read STRING runs")
        if out.ndim != 1:
            raise XBSDecodeError(f"read_scalars_into needs a 1-D target, got {out.ndim}-D")
        count = out.size
        if count == 0:
            return out
        self.align(code.size)
        nbytes = count * code.size
        raw = self.read_bytes(nbytes)
        wire = np.frombuffer(raw, dtype=dtype_for(code, self.byte_order), count=count)
        if code is TypeCode.BOOL:
            wire = wire.view(np.bool_)
        np.copyto(out, wire, casting="same_kind")
        return out

    def read_array(self, code: TypeCode, *, copy: bool = False) -> np.ndarray:
        """Read a packed 1-D array written by :meth:`XBSWriter.write_array`.

        Returns a numpy array in the *stream's* byte order.  By default the
        array is a zero-copy view of the underlying buffer (read-only when
        the buffer is); pass ``copy=True`` for an independent native-order
        copy.

        ``BOOL`` runs come back as ``np.bool_`` (a zero-copy reinterpretation
        of the wire bytes), so any nonzero byte — including the >1 values a
        hostile peer may write — compares equal to ``True``, exactly as the
        scalar :meth:`read_scalars` path canonicalizes them.
        """
        code = TypeCode(code)
        if code is TypeCode.STRING:
            raise XBSDecodeError("arrays of strings are not supported by XBS")
        count = self.read_vls()
        self.align(code.size)
        nbytes = count * code.size
        raw = self.read_bytes(nbytes)
        dtype = dtype_for(code, self.byte_order)
        arr = np.frombuffer(raw, dtype=dtype, count=count)
        if code is TypeCode.BOOL:
            # view, not astype: still zero-copy, and numpy's bool_ treats
            # every nonzero byte as True — element-equal to the scalar path
            return arr.astype(np.bool_) if copy else arr.view(np.bool_)
        if copy:
            return arr.astype(dtype.newbyteorder("="), copy=True)
        return arr
