"""Compiled ``struct.Struct`` cache shared by the XBS and BXSA hot paths.

``struct.pack(fmt, v)`` re-parses the format string on every call; the
compiled :class:`struct.Struct` object parses it once and then packs through
a C fast path.  The set of scalar formats is tiny and fixed — one per
``(byte order, type code)`` pair — so the singles cache is a plain dict
populated eagerly at import.  Homogeneous *runs* (``<1365d`` and friends,
used by the bulk ``write_scalars``/``read_scalars`` paths) are unbounded in
principle, so they go through an LRU instead.

Everything here is pure lookup: no locking is needed because dict reads and
``lru_cache`` calls are safe under the GIL, and all cached objects are
immutable once created.
"""

from __future__ import annotations

import struct
from functools import lru_cache

from repro.xbs.constants import _ENDIAN_CHAR, TypeCode, dtype_for

#: struct format character per type code (BOOL travels as an unsigned byte).
STRUCT_FMT = {
    TypeCode.INT8: "b",
    TypeCode.INT16: "h",
    TypeCode.INT32: "i",
    TypeCode.INT64: "q",
    TypeCode.UINT8: "B",
    TypeCode.UINT16: "H",
    TypeCode.UINT32: "I",
    TypeCode.UINT64: "Q",
    TypeCode.FLOAT32: "f",
    TypeCode.FLOAT64: "d",
    TypeCode.BOOL: "B",
}

#: (byte_order, TypeCode) -> compiled single-value Struct.  Eagerly built:
#: 2 orders × 11 codes, all of which real documents hit quickly anyway.
_SINGLES: dict[tuple[int, TypeCode], struct.Struct] = {
    (order, code): struct.Struct(endian_char + fmt)
    for order, endian_char in _ENDIAN_CHAR.items()
    for code, fmt in STRUCT_FMT.items()
}


def struct_for(byte_order: int, code: TypeCode) -> struct.Struct:
    """The compiled Struct for one scalar of ``code`` in ``byte_order``.

    Raises :class:`KeyError` for ``STRING``, which has no fixed-width format.
    """
    return _SINGLES[(byte_order, code)]


@lru_cache(maxsize=512)
def struct_for_run(byte_order: int, code: TypeCode, count: int) -> struct.Struct:
    """A compiled Struct for a homogeneous run of ``count`` scalars.

    Backs the bulk ``pack_into``/``unpack_from`` paths; the LRU bounds the
    cache against pathological workloads that sweep many distinct lengths.
    """
    return struct.Struct(_ENDIAN_CHAR[byte_order] + str(count) + STRUCT_FMT[code])


@lru_cache(maxsize=None)
def wire_dtype(byte_order: int, code: TypeCode):
    """The numpy dtype for ``code`` in ``byte_order``, cached.

    ``dtype_for`` constructs a fresh ``np.dtype`` on every call; the array
    decode paths (stateless decoder and compiled decode plans) resolve the
    same two dozen ``(order, code)`` pairs per process, so an unbounded
    cache over that fixed domain is the right shape.
    """
    return dtype_for(code, byte_order)
