"""VLS: the variable-length size integers used by BXSA frame headers.

The paper stores frame sizes, string lengths, counts and namespace scope
depths "in a variable-length integer format".  We use the standard base-128
continuation encoding: each byte carries 7 payload bits, the high bit is set
on every byte except the last, and payload groups are little-endian (least
significant group first).  Values are unsigned; encoders must reject
negatives.

The encoding is *canonical*: a decoder rejects padded encodings such as
``0x80 0x00`` for zero, so a value has exactly one wire form.  This keeps the
frame ``Size`` field deterministic, which BXSA's accelerated sequential
access relies on.
"""

from __future__ import annotations

from repro.xbs.errors import XBSDecodeError, XBSEncodeError

#: Safety bound: 10 bytes encode up to 70 bits, more than any 64-bit size.
_MAX_VLS_BYTES = 10


def vls_length(value: int) -> int:
    """Number of bytes :func:`encode_vls` will produce for ``value``."""
    if value < 0:
        raise XBSEncodeError(f"VLS values are unsigned, got {value}")
    length = 1
    value >>= 7
    while value:
        length += 1
        value >>= 7
    return length


def encode_vls(value: int) -> bytes:
    """Encode an unsigned integer as a VLS byte string."""
    if value < 0:
        raise XBSEncodeError(f"VLS values are unsigned, got {value}")
    out = bytearray()
    while True:
        group = value & 0x7F
        value >>= 7
        if value:
            out.append(group | 0x80)
        else:
            out.append(group)
            return bytes(out)


def decode_vls(data, offset: int = 0) -> tuple[int, int]:
    """Decode a VLS integer from ``data`` starting at ``offset``.

    Returns ``(value, new_offset)`` where ``new_offset`` points just past the
    last byte consumed.  Raises :class:`XBSDecodeError` on truncation,
    over-long input, or non-canonical (zero-padded) encodings.
    """
    value = 0
    shift = 0
    pos = offset
    n = len(data)
    while True:
        if pos >= n:
            raise XBSDecodeError("truncated VLS integer")
        if pos - offset >= _MAX_VLS_BYTES:
            raise XBSDecodeError("VLS integer longer than 10 bytes")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if byte == 0 and pos - offset > 1:
                raise XBSDecodeError("non-canonical VLS encoding (padded zero)")
            if value > 0xFFFFFFFFFFFFFFFF:
                # 10 bytes carry up to 70 payload bits; the frame-size
                # domain is unsigned 64-bit, so the excess must be rejected
                # rather than silently accepted as a >2^64 "size"
                raise XBSDecodeError(f"VLS value {value} exceeds the unsigned 64-bit range")
            return value, pos
        shift += 7
