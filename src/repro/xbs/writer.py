"""Streaming XBS writer.

The writer appends primitives to a growable buffer.  Multi-byte numbers are
aligned to a multiple of their own size, measured from the start of the
stream, by inserting zero pad bytes; this is what lets BXSA array frames be
consumed with zero-copy ``memoryview`` slices (and, in the paper's C++
implementation, memory-mapped file I/O).

Array payloads always travel through numpy's bulk ``tobytes``/byteswap path —
never a per-element Python loop — per the packed-array idiom the paper's
ArrayElement is designed around.
"""

from __future__ import annotations

import numpy as np

from repro.xbs.constants import (
    _ENDIAN_CHAR,
    NATIVE_ENDIAN,
    TypeCode,
    dtype_for,
    type_code_for_dtype,
)
from repro.xbs.errors import XBSEncodeError
from repro.xbs.structcache import STRUCT_FMT, struct_for, struct_for_run
from repro.xbs.varint import encode_vls

_INT_RANGES = {
    TypeCode.INT8: (-(2**7), 2**7 - 1),
    TypeCode.INT16: (-(2**15), 2**15 - 1),
    TypeCode.INT32: (-(2**31), 2**31 - 1),
    TypeCode.INT64: (-(2**63), 2**63 - 1),
    TypeCode.UINT8: (0, 2**8 - 1),
    TypeCode.UINT16: (0, 2**16 - 1),
    TypeCode.UINT32: (0, 2**32 - 1),
    TypeCode.UINT64: (0, 2**64 - 1),
}

#: Legacy alias; the format table now lives in :mod:`repro.xbs.structcache`.
_STRUCT_FMT = STRUCT_FMT


class XBSWriter:
    """Accumulate an XBS byte stream.

    Parameters
    ----------
    byte_order:
        ``LITTLE_ENDIAN`` or ``BIG_ENDIAN``; defaults to the host order so
        the common case is a straight memory copy.
    align:
        When ``True`` (the default, matching the XBS spec) each multi-byte
        number is padded to a multiple of its size relative to stream start.
        BXSA turns this off for frame-header fields, which are byte-packed.
    buffer:
        Optional ``bytearray`` to accumulate into.  Passing a pooled buffer
        (cleared via :meth:`reset`) lets a long-lived producer amortize the
        allocation across messages; the writer takes ownership while active.
    """

    def __init__(
        self,
        byte_order: int = NATIVE_ENDIAN,
        *,
        align: bool = True,
        buffer: bytearray | None = None,
    ) -> None:
        if byte_order not in (0, 1):
            raise XBSEncodeError(f"invalid byte order {byte_order!r}")
        self.byte_order = byte_order
        self.align_enabled = align
        self._buf = buffer if buffer is not None else bytearray()
        self._endian_char = _ENDIAN_CHAR[byte_order]

    def reset(self) -> None:
        """Clear the accumulated stream, keeping the underlying buffer.

        ``bytearray`` keeps (a fraction of) its allocation across clears, so
        a pooled writer re-used per message skips most of the regrow cost.
        """
        del self._buf[:]

    # ------------------------------------------------------------------
    # positioning

    def tell(self) -> int:
        """Current stream length in bytes."""
        return len(self._buf)

    def align(self, size: int) -> int:
        """Pad with zero bytes to the next multiple of ``size``.

        Returns the number of pad bytes inserted.  No-op when alignment is
        disabled or the stream is already aligned.
        """
        if not self.align_enabled or size <= 1:
            return 0
        rem = len(self._buf) % size
        if rem == 0:
            return 0
        pad = size - rem
        self._buf.extend(b"\x00" * pad)
        return pad

    # ------------------------------------------------------------------
    # scalar writes

    def write_scalar(self, code: TypeCode, value) -> None:
        """Write one scalar of the given type code, with range checking."""
        code = TypeCode(code)
        if code is TypeCode.STRING:
            self.write_string(value)
            return
        if code in _INT_RANGES:
            value = int(value)
            lo, hi = _INT_RANGES[code]
            if not lo <= value <= hi:
                raise XBSEncodeError(f"{value} out of range for {code.name}")
        elif code is TypeCode.BOOL:
            value = 1 if value else 0
        else:
            value = float(value)
        self.align(code.size)
        self._buf.extend(struct_for(self.byte_order, code).pack(value))

    def write_scalars(self, code: TypeCode, values) -> None:
        """Write a homogeneous run of scalars with one bulk ``pack_into``.

        Byte-identical to calling :meth:`write_scalar` once per value: the
        stream is aligned once up front, and since every item is exactly
        ``code.size`` bytes the per-item alignment of the scalar path is a
        no-op after the first item.  The values are range-checked/coerced
        with the same rules as :meth:`write_scalar`.
        """
        code = TypeCode(code)
        if code is TypeCode.STRING:
            raise XBSEncodeError("write_scalars cannot write STRING runs")
        values = list(values)
        if not values:
            return
        if code in _INT_RANGES:
            lo, hi = _INT_RANGES[code]
            values = [int(v) for v in values]
            for v in values:
                if not lo <= v <= hi:
                    raise XBSEncodeError(f"{v} out of range for {code.name}")
        elif code is TypeCode.BOOL:
            values = [1 if v else 0 for v in values]
        else:
            values = [float(v) for v in values]
        self.align(code.size)
        buf = self._buf
        offset = len(buf)
        run = struct_for_run(self.byte_order, code, len(values))
        buf.extend(bytes(run.size))
        run.pack_into(buf, offset, *values)

    def write_int8(self, value: int) -> None:
        self.write_scalar(TypeCode.INT8, value)

    def write_int16(self, value: int) -> None:
        self.write_scalar(TypeCode.INT16, value)

    def write_int32(self, value: int) -> None:
        self.write_scalar(TypeCode.INT32, value)

    def write_int64(self, value: int) -> None:
        self.write_scalar(TypeCode.INT64, value)

    def write_uint8(self, value: int) -> None:
        self.write_scalar(TypeCode.UINT8, value)

    def write_uint16(self, value: int) -> None:
        self.write_scalar(TypeCode.UINT16, value)

    def write_uint32(self, value: int) -> None:
        self.write_scalar(TypeCode.UINT32, value)

    def write_uint64(self, value: int) -> None:
        self.write_scalar(TypeCode.UINT64, value)

    def write_float32(self, value: float) -> None:
        self.write_scalar(TypeCode.FLOAT32, value)

    def write_float64(self, value: float) -> None:
        self.write_scalar(TypeCode.FLOAT64, value)

    # ------------------------------------------------------------------
    # variable-size writes (never aligned)

    def write_vls(self, value: int) -> None:
        """Write a variable-length size integer (unaligned by design)."""
        self._buf.extend(encode_vls(value))

    def write_bytes(self, data: bytes | bytearray | memoryview) -> None:
        """Write raw bytes verbatim, without a length prefix or padding."""
        self._buf.extend(data)

    def write_string(self, text: str) -> None:
        """Write a UTF-8 string as a VLS byte count followed by the bytes."""
        raw = text.encode("utf-8")
        self.write_vls(len(raw))
        self._buf.extend(raw)

    # ------------------------------------------------------------------
    # array writes

    def write_array(self, values: np.ndarray, code: TypeCode | None = None) -> None:
        """Write a packed 1-D array: VLS element count, pad, then raw items.

        ``values`` must be one-dimensional.  When ``code`` is omitted it is
        derived from the array dtype.  The payload is byte-swapped in bulk if
        the writer's byte order differs from the array's.
        """
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise XBSEncodeError(f"XBS arrays are one-dimensional, got shape {arr.shape}")
        if code is None:
            code = type_code_for_dtype(arr.dtype)
        code = TypeCode(code)
        if code is TypeCode.STRING:
            raise XBSEncodeError("arrays of strings are not supported by XBS")
        target = dtype_for(code, self.byte_order)
        arr = np.ascontiguousarray(arr, dtype=target)
        self.write_vls(arr.size)
        self.align(code.size)
        self._buf.extend(arr.tobytes())

    # ------------------------------------------------------------------
    # output

    def getvalue(self) -> bytes:
        """Return the accumulated stream as an immutable byte string."""
        return bytes(self._buf)

    def getbuffer(self) -> memoryview:
        """Return a zero-copy view of the accumulated stream."""
        return memoryview(self._buf)

    def __len__(self) -> int:
        return len(self._buf)
