"""bXDM: the paper's scientific-data-friendly extension of the XDM data model.

bXDM keeps the seven node kinds of the XQuery/XPath Data Model (Document,
Element, Attribute, Namespace, Processing Instruction, Text, Comment) and
refines Element with two subtypes designed for numeric data:

* :class:`LeafElement` — an element whose content is a single *typed atomic
  value* held in native machine form (a Python/numpy scalar), so that
  serializers that understand types (BXSA) never pay the float↔ASCII
  conversion the paper identifies as the SOAP bottleneck;
* :class:`ArrayElement` — an element whose content is a packed 1-D numpy
  array of one primitive type, the data-model counterpart of a netCDF
  variable or a Fortran/C array.

Everything above the data model (the SOAP engine, XPath-style queries, the
WS-* layers in Figure 3 of the paper) is written against these classes and is
therefore ignorant of whether a message was, or will be, serialized as
textual XML 1.0 or as BXSA frames.
"""

from repro.xdm.errors import XDMError, XDMTypeError
from repro.xdm.qname import QName, XMLNS_URI, XSD_URI, XSI_URI
from repro.xdm.types import (
    AtomicType,
    atomic_type_for_code,
    atomic_type_for_dtype,
    atomic_type_for_xsd,
    format_lexical,
    parse_lexical,
)
from repro.xdm.nodes import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    NamespaceNode,
    NodeKind,
    PINode,
    TextNode,
)
from repro.xdm.builder import TreeBuilder, array, comment, doc, element, leaf, pi, text
from repro.xdm.compare import canonical_signature, deep_equal, explain_difference
from repro.xdm.path import children_named, find_all, find_first, select
from repro.xdm.visitor import Visitor, walk

__all__ = [
    "ArrayElement",
    "AtomicType",
    "AttributeNode",
    "CommentNode",
    "DocumentNode",
    "ElementNode",
    "LeafElement",
    "NamespaceNode",
    "NodeKind",
    "PINode",
    "QName",
    "TextNode",
    "TreeBuilder",
    "Visitor",
    "XDMError",
    "XDMTypeError",
    "XMLNS_URI",
    "XSD_URI",
    "XSI_URI",
    "array",
    "atomic_type_for_code",
    "atomic_type_for_dtype",
    "atomic_type_for_xsd",
    "canonical_signature",
    "children_named",
    "comment",
    "deep_equal",
    "doc",
    "element",
    "explain_difference",
    "find_all",
    "find_first",
    "format_lexical",
    "leaf",
    "parse_lexical",
    "pi",
    "select",
    "text",
    "walk",
]
