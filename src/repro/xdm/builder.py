"""Convenience constructors and a stack-based tree builder for bXDM.

Two styles are offered:

* functional — :func:`element`, :func:`leaf`, :func:`array`, :func:`text`,
  nested directly::

      env = element("Envelope",
                    element("Body",
                            leaf("count", 3, "int"),
                            array("values", np.arange(4.0))))

* imperative — :class:`TreeBuilder`, whose ``element`` context manager keeps
  the current insertion point, convenient when the tree shape is data-driven
  (the SOAP engine and the XML parser both use it).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.xdm.errors import XDMError
from repro.xdm.nodes import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    NamespaceNode,
    Node,
    PINode,
    TextNode,
)
from repro.xdm.qname import QName


def _attrs(attributes: dict | None) -> list[AttributeNode]:
    if not attributes:
        return []
    return [AttributeNode(name, value) for name, value in attributes.items()]


def _nss(namespaces: dict | None) -> list[NamespaceNode]:
    if not namespaces:
        return []
    return [NamespaceNode(prefix, uri) for prefix, uri in namespaces.items()]


def element(
    name: QName | str,
    *children: Node,
    attributes: dict | None = None,
    namespaces: dict | None = None,
) -> ElementNode:
    """Build a component element with inline children."""
    return ElementNode(
        name,
        attributes=_attrs(attributes),
        namespaces=_nss(namespaces),
        children=children,
    )


def leaf(
    name: QName | str,
    value,
    atype=None,
    *,
    attributes: dict | None = None,
    namespaces: dict | None = None,
) -> LeafElement:
    """Build a typed leaf element (type inferred from the value if omitted)."""
    return LeafElement(
        name, value, atype, attributes=_attrs(attributes), namespaces=_nss(namespaces)
    )


def array(
    name: QName | str,
    values,
    atype=None,
    *,
    attributes: dict | None = None,
    namespaces: dict | None = None,
    item_name: str | None = None,
) -> ArrayElement:
    """Build a packed array element from any array-like."""
    return ArrayElement(
        name,
        values,
        atype,
        attributes=_attrs(attributes),
        namespaces=_nss(namespaces),
        item_name=item_name,
    )


def text(content: str) -> TextNode:
    return TextNode(content)


def comment(content: str) -> CommentNode:
    return CommentNode(content)


def pi(target: str, data: str = "") -> PINode:
    return PINode(target, data)


def doc(*children: Node) -> DocumentNode:
    """Build a document node around prolog nodes and the root element."""
    return DocumentNode(children)


class TreeBuilder:
    """Imperative builder maintaining a current-element stack."""

    def __init__(self) -> None:
        self._document = DocumentNode()
        self._stack: list[ElementNode | DocumentNode] = [self._document]

    @property
    def current(self) -> ElementNode | DocumentNode:
        return self._stack[-1]

    @property
    def document(self) -> DocumentNode:
        if len(self._stack) != 1:
            raise XDMError(f"{len(self._stack) - 1} element(s) still open")
        return self._document

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._stack) - 1

    # -- structural operations -------------------------------------------

    def start_element(
        self,
        name: QName | str,
        *,
        attributes: dict | None = None,
        namespaces: dict | None = None,
    ) -> ElementNode:
        node = element(name, attributes=attributes, namespaces=namespaces)
        self.current.append(node)
        self._stack.append(node)
        return node

    def end_element(self) -> ElementNode:
        if len(self._stack) == 1:
            raise XDMError("end_element() with no element open")
        return self._stack.pop()  # type: ignore[return-value]

    @contextlib.contextmanager
    def element(
        self,
        name: QName | str,
        *,
        attributes: dict | None = None,
        namespaces: dict | None = None,
    ) -> Iterator[ElementNode]:
        node = self.start_element(name, attributes=attributes, namespaces=namespaces)
        try:
            yield node
        finally:
            popped = self.end_element()
            if popped is not node:  # pragma: no cover - builder misuse
                raise XDMError("unbalanced element nesting in TreeBuilder")

    # -- content operations ----------------------------------------------

    def add(self, node: Node) -> Node:
        return self.current.append(node)

    def leaf(self, name: QName | str, value, atype=None, **kwargs) -> LeafElement:
        node = leaf(name, value, atype, **kwargs)
        self.current.append(node)
        return node

    def array(self, name: QName | str, values, atype=None, **kwargs) -> ArrayElement:
        node = array(name, values, atype, **kwargs)
        self.current.append(node)
        return node

    def text(self, content: str) -> TextNode:
        node = TextNode(content)
        self.current.append(node)
        return node

    def comment(self, content: str) -> CommentNode:
        node = CommentNode(content)
        self.current.append(node)
        return node

    def pi(self, target: str, data: str = "") -> PINode:
        node = PINode(target, data)
        self.current.append(node)
        return node
