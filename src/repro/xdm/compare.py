"""Structural comparison of bXDM trees.

Used pervasively by the test suite (round-trip and transcodability checks)
and by the paper's verification service.  Equality is *data-model* equality:
namespace prefixes do not participate in QName identity, attribute order is
insignificant, and NaN compares equal to NaN (a round-tripped NaN payload is
still the same payload).
"""

from __future__ import annotations

import math

import numpy as np

from repro.xdm.nodes import (
    ArrayElement,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    Node,
    PINode,
    TextNode,
)


def deep_equal(a: Node, b: Node, *, ignore_ns_decls: bool = False) -> bool:
    """True when the two trees are equal under bXDM data-model equality.

    ``ignore_ns_decls=True`` skips comparison of namespace *declaration*
    nodes (element/attribute identity is URI-based regardless).  Textual XML
    round-trips need this: the serializer auto-declares prefixes for
    ``xsi:type`` annotations, so a parsed-back tree legitimately carries
    extra declarations.
    """
    return explain_difference(a, b, ignore_ns_decls=ignore_ns_decls) is None


def explain_difference(
    a: Node, b: Node, path: str = "/", *, ignore_ns_decls: bool = False
) -> str | None:
    """Return a human-readable description of the first difference, or None.

    The returned string names the path to the differing node — invaluable
    when a 64 MB round-trip test fails somewhere in the middle.  Iterative
    (explicit worklist), so arbitrarily deep trees compare without hitting
    the recursion limit.
    """
    work: list[tuple[Node, Node, str]] = [(a, b, path)]
    while work:
        a, b, path = work.pop()
        diff = _compare_one(a, b, path, work, ignore_ns_decls=ignore_ns_decls)
        if diff is not None:
            return diff
    return None


def _compare_one(
    a: Node,
    b: Node,
    path: str,
    work: list,
    *,
    ignore_ns_decls: bool = False,
) -> str | None:
    if type(a) is not type(b):
        return f"{path}: node kinds differ ({type(a).__name__} vs {type(b).__name__})"
    opts = {"ignore_ns_decls": ignore_ns_decls}

    if isinstance(a, DocumentNode):
        return _enqueue_children(a, b, path, work)

    if isinstance(a, LeafElement):
        assert isinstance(b, LeafElement)
        header = _compare_element_header(a, b, path, **opts)
        if header:
            return header
        if a.atype != b.atype:
            return f"{path}{a.name.local}: leaf types differ ({a.atype.xsd_name} vs {b.atype.xsd_name})"
        if not _scalar_equal(a.value, b.value):
            return f"{path}{a.name.local}: leaf values differ ({a.value!r} vs {b.value!r})"
        return None

    if isinstance(a, ArrayElement):
        assert isinstance(b, ArrayElement)
        header = _compare_element_header(a, b, path, **opts)
        if header:
            return header
        if a.atype != b.atype:
            return f"{path}{a.name.local}: array types differ ({a.atype.xsd_name} vs {b.atype.xsd_name})"
        if a.values.size != b.values.size:
            return f"{path}{a.name.local}: array lengths differ ({a.values.size} vs {b.values.size})"
        if not _arrays_equal(a.values, b.values):
            idx = _first_mismatch(a.values, b.values)
            return (
                f"{path}{a.name.local}: array values differ at index {idx} "
                f"({a.values[idx]!r} vs {b.values[idx]!r})"
            )
        return None

    if isinstance(a, ElementNode):
        assert isinstance(b, ElementNode)
        header = _compare_element_header(a, b, path, **opts)
        if header:
            return header
        return _enqueue_children(a, b, f"{path}{a.name.local}/", work)

    if isinstance(a, TextNode):
        assert isinstance(b, TextNode)
        if a.text != b.text:
            return f"{path}: text differs ({a.text[:40]!r} vs {b.text[:40]!r})"
        return None

    if isinstance(a, CommentNode):
        assert isinstance(b, CommentNode)
        if a.text != b.text:
            return f"{path}: comment differs"
        return None

    if isinstance(a, PINode):
        assert isinstance(b, PINode)
        if (a.target, a.data) != (b.target, b.data):
            return f"{path}: processing instruction differs"
        return None

    return f"{path}: unsupported node type {type(a).__name__}"  # pragma: no cover


def _compare_element_header(
    a: ElementNode, b: ElementNode, path: str, *, ignore_ns_decls: bool = False
) -> str | None:
    if a.name != b.name:
        return f"{path}: element names differ ({a.name.clark()} vs {b.name.clark()})"
    if not ignore_ns_decls and set(a.namespaces) != set(b.namespaces):
        return f"{path}{a.name.local}: namespace declarations differ"
    a_attrs = {attr.name: attr for attr in a.attributes}
    b_attrs = {attr.name: attr for attr in b.attributes}
    if a_attrs.keys() != b_attrs.keys():
        only_a = sorted(q.clark() for q in a_attrs.keys() - b_attrs.keys())
        only_b = sorted(q.clark() for q in b_attrs.keys() - a_attrs.keys())
        return f"{path}{a.name.local}: attribute sets differ (only-left={only_a}, only-right={only_b})"
    for qname, attr in a_attrs.items():
        other = b_attrs[qname]
        if attr.atype != other.atype or not _scalar_equal(attr.value, other.value):
            return (
                f"{path}{a.name.local}/@{qname.local}: attribute values differ "
                f"({attr.value!r} vs {other.value!r})"
            )
    return None


def _enqueue_children(a, b, path: str, work: list) -> str | None:
    if len(a.children) != len(b.children):
        return f"{path}: child counts differ ({len(a.children)} vs {len(b.children)})"
    for i in range(len(a.children) - 1, -1, -1):
        work.append((a.children[i], b.children[i], f"{path}[{i}]"))
    return None


def _scalar_equal(x, y) -> bool:
    if isinstance(x, float) and isinstance(y, float):
        if math.isnan(x) and math.isnan(y):
            return True
        return x == y
    return x == y


def _arrays_equal(x: np.ndarray, y: np.ndarray) -> bool:
    if x.dtype.kind == "f":
        return bool(np.array_equal(x, y, equal_nan=True))
    return bool(np.array_equal(x, y))


def _first_mismatch(x: np.ndarray, y: np.ndarray) -> int:
    if x.dtype.kind == "f":
        neq = ~((x == y) | (np.isnan(x) & np.isnan(y)))
    else:
        neq = x != y
    return int(np.argmax(neq))


def canonical_signature(node: Node, *, include_ns_decls: bool = True):
    """A hashable, order-normalized summary of a tree.

    Two trees have the same signature iff :func:`deep_equal` holds (modulo
    float bit-patterns of NaN).  Handy as a dict key in caching layers and
    for quick test assertions.

    ``include_ns_decls=False`` drops namespace *declaration* nodes from the
    summary (QName identity is URI-based regardless) — the form message
    signatures are computed over, since re-encoding through textual XML
    legitimately adds declarations (see :func:`deep_equal`).
    """
    opts = {"include_ns_decls": include_ns_decls}
    if isinstance(node, DocumentNode):
        return ("doc", tuple(canonical_signature(c, **opts) for c in node.children))
    if isinstance(node, LeafElement):
        return (
            "leaf",
            node.name.clark(),
            _header_sig(node, **opts),
            node.atype.xsd_name,
            _scalar_sig(node.value),
        )
    if isinstance(node, ArrayElement):
        return (
            "array",
            node.name.clark(),
            _header_sig(node, **opts),
            node.atype.xsd_name,
            node.values.tobytes(),
        )
    if isinstance(node, ElementNode):
        return (
            "elem",
            node.name.clark(),
            _header_sig(node, **opts),
            tuple(canonical_signature(c, **opts) for c in node.children),
        )
    if isinstance(node, TextNode):
        return ("text", node.text)
    if isinstance(node, CommentNode):
        return ("comment", node.text)
    if isinstance(node, PINode):
        return ("pi", node.target, node.data)
    raise TypeError(f"cannot summarize {type(node).__name__}")  # pragma: no cover


def _header_sig(node: ElementNode, *, include_ns_decls: bool = True):
    attrs = tuple(
        sorted(
            (a.name.clark(), a.atype.xsd_name, _scalar_sig(a.value)) for a in node.attributes
        )
    )
    if not include_ns_decls:
        return (attrs,)
    nss = tuple(sorted((ns.prefix, ns.uri) for ns in node.namespaces))
    return (attrs, nss)


def _scalar_sig(value):
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return value
