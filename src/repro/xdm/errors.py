"""Exception hierarchy for the bXDM data model."""


class XDMError(Exception):
    """Base class for bXDM data-model errors."""


class XDMTypeError(XDMError):
    """Raised when a value does not fit the atomic type it is declared with,
    or when an XML Schema type name / numpy dtype has no bXDM mapping."""
