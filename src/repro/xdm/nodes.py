"""bXDM node classes.

The class hierarchy mirrors §3 of the paper: the seven XDM node kinds plus
the two Element refinements (LeafElement, ArrayElement).  Nodes are plain
mutable objects with ``__slots__``; trees own their children outright and
carry no parent pointers (scope-sensitive operations such as namespace
resolution are done by the walkers, which maintain an explicit ancestor
stack — cheaper and simpler than back-links).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

import numpy as np

from repro.xdm.errors import XDMError, XDMTypeError
from repro.xdm.qname import QName
from repro.xdm.types import (
    AtomicType,
    atomic_type_for_dtype,
    atomic_type_for_xsd,
    coerce_value,
)


class NodeKind(enum.Enum):
    """The node kinds of bXDM.

    ``LEAF_ELEMENT`` and ``ARRAY_ELEMENT`` are the paper's refinements of
    ``ELEMENT``; everything else is standard XDM.
    """

    DOCUMENT = "document"
    ELEMENT = "element"
    LEAF_ELEMENT = "leaf-element"
    ARRAY_ELEMENT = "array-element"
    ATTRIBUTE = "attribute"
    NAMESPACE = "namespace"
    TEXT = "text"
    COMMENT = "comment"
    PI = "processing-instruction"


class Node:
    """Common base for all bXDM nodes."""

    __slots__ = ()
    kind: NodeKind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class NamespaceNode(Node):
    """A namespace declaration (``xmlns:p="uri"`` or default ``xmlns="uri"``)."""

    __slots__ = ("prefix", "uri")
    kind = NodeKind.NAMESPACE

    def __init__(self, prefix: str, uri: str) -> None:
        self.prefix = prefix  #: "" for the default namespace
        self.uri = uri

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NamespaceNode)
            and self.prefix == other.prefix
            and self.uri == other.uri
        )

    def __hash__(self) -> int:
        return hash((self.prefix, self.uri))

    def __repr__(self) -> str:
        name = f"xmlns:{self.prefix}" if self.prefix else "xmlns"
        return f"<NamespaceNode {name}={self.uri!r}>"


class AttributeNode(Node):
    """An attribute with an optionally *typed* value.

    BXSA attribute slots carry a type code, so attributes can hold native
    numerics just like leaf elements; textual XML always renders them through
    the lexical form.  Untyped attributes default to ``xsd:string``.
    """

    __slots__ = ("name", "value", "atype")
    kind = NodeKind.ATTRIBUTE

    def __init__(self, name: QName | str, value, atype: AtomicType | str | None = None) -> None:
        self.name = name if isinstance(name, QName) else QName.parse(name)
        if atype is None:
            atype = atomic_type_for_xsd("string") if isinstance(value, str) else _infer_type(value)
        elif isinstance(atype, str):
            atype = atomic_type_for_xsd(atype)
        self.atype = atype
        self.value = coerce_value(atype, value)

    def __repr__(self) -> str:
        return f"<AttributeNode {self.name}={self.value!r} ({self.atype.xsd_name})>"


class TextNode(Node):
    """A run of character data."""

    __slots__ = ("text",)
    kind = NodeKind.TEXT

    def __init__(self, text: str) -> None:
        if not isinstance(text, str):
            raise XDMTypeError(f"TextNode requires str, got {type(text).__name__}")
        self.text = text

    def __repr__(self) -> str:
        return f"<TextNode {self.text[:40]!r}>"


class CommentNode(Node):
    """An XML comment."""

    __slots__ = ("text",)
    kind = NodeKind.COMMENT

    def __init__(self, text: str) -> None:
        if "--" in text:
            raise XDMError("XML comments must not contain '--'")
        if text.endswith("-"):
            raise XDMError("XML comments must not end with '-'")
        self.text = text

    def __repr__(self) -> str:
        return f"<CommentNode {self.text[:40]!r}>"


class PINode(Node):
    """A processing instruction (``<?target data?>``)."""

    __slots__ = ("target", "data")
    kind = NodeKind.PI

    def __init__(self, target: str, data: str = "") -> None:
        if not target or target.lower() == "xml":
            raise XDMError(f"invalid PI target {target!r}")
        if "?>" in data:
            raise XDMError("PI data must not contain '?>'")
        self.target = target
        # Leading whitespace is part of the target/data separator in XML
        # (the Infoset excludes it from PI content), so it cannot survive
        # a serialize/parse round trip; normalize it away up front so the
        # textual and binary codecs agree on one canonical value.
        self.data = data.lstrip(" \t\r\n")

    def __repr__(self) -> str:
        return f"<PINode {self.target} {self.data[:30]!r}>"


class ElementNode(Node):
    """A general (component) element: children are arbitrary nodes."""

    __slots__ = ("name", "attributes", "namespaces", "children")
    kind = NodeKind.ELEMENT

    def __init__(
        self,
        name: QName | str,
        *,
        attributes: Iterable[AttributeNode] = (),
        namespaces: Iterable[NamespaceNode] = (),
        children: Iterable[Node] = (),
    ) -> None:
        self.name = name if isinstance(name, QName) else QName.parse(name)
        self.attributes: list[AttributeNode] = list(attributes)
        self.namespaces: list[NamespaceNode] = list(namespaces)
        self.children: list[Node] = list(children)

    # -- convenience accessors -------------------------------------------

    def append(self, node: Node) -> Node:
        """Append a child node and return it (chaining convenience)."""
        self.children.append(node)
        return node

    def attribute(self, name: QName | str) -> AttributeNode | None:
        """Find an attribute by QName (or by local name if unqualified)."""
        if isinstance(name, str) and not name.startswith("{"):
            for attr in self.attributes:
                if attr.name.local == name:
                    return attr
            return None
        qname = name if isinstance(name, QName) else QName.parse(name)
        for attr in self.attributes:
            if attr.name == qname:
                return attr
        return None

    def set_attribute(self, name: QName | str, value, atype=None) -> AttributeNode:
        """Add or replace an attribute; returns the attribute node."""
        attr = AttributeNode(name, value, atype)
        for i, existing in enumerate(self.attributes):
            if existing.name == attr.name:
                self.attributes[i] = attr
                return attr
        self.attributes.append(attr)
        return attr

    def declare_namespace(self, prefix: str, uri: str) -> NamespaceNode:
        ns = NamespaceNode(prefix, uri)
        self.namespaces.append(ns)
        return ns

    def elements(self) -> Iterator["ElementNode"]:
        """Iterate child nodes that are elements (of any refinement)."""
        for child in self.children:
            if isinstance(child, ElementNode):
                yield child

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes and typed leaves."""
        from repro.xdm.types import format_lexical

        parts: list[str] = []
        for child in self.children:
            if isinstance(child, TextNode):
                parts.append(child.text)
            elif isinstance(child, ElementNode):
                parts.append(child.text_content())
        if isinstance(self, LeafElement):
            parts.append(format_lexical(self.atype, self.value))
        elif isinstance(self, ArrayElement):
            from repro.xdm.types import format_lexical as _fmt

            parts.append(" ".join(_fmt(self.atype, v) for v in self.values))
        return "".join(parts)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name.clark()} ({len(self.children)} children)>"


class LeafElement(ElementNode):
    """An element holding one typed atomic value in native machine form.

    The Python analogue of the paper's ``LeafElement<T>``: ``atype`` plays
    the template parameter's role and ``value`` is a Python/numpy scalar —
    never a lexical string — so BXSA encoding is a fixed-width copy.
    LeafElements have no children.
    """

    __slots__ = ("value", "atype")
    kind = NodeKind.LEAF_ELEMENT

    def __init__(
        self,
        name: QName | str,
        value,
        atype: AtomicType | str | None = None,
        *,
        attributes: Iterable[AttributeNode] = (),
        namespaces: Iterable[NamespaceNode] = (),
    ) -> None:
        super().__init__(name, attributes=attributes, namespaces=namespaces)
        if atype is None:
            atype = _infer_type(value)
        elif isinstance(atype, str):
            atype = atomic_type_for_xsd(atype)
        self.atype = atype
        self.value = coerce_value(atype, value)

    def append(self, node: Node) -> Node:
        raise XDMError("LeafElement cannot have children")

    def __repr__(self) -> str:
        return f"<LeafElement {self.name.clark()}={self.value!r} ({self.atype.xsd_name})>"


class ArrayElement(ElementNode):
    """An element holding a packed 1-D array of one primitive type.

    The Python analogue of ``ArrayElement<T>``: ``values`` is always a
    C-contiguous 1-D numpy array whose dtype matches ``atype``, compatible
    with zero-copy I/O (the paper's memory-mapped-file point) and with any
    C/Fortran consumer.  ArrayElements have no children.
    """

    __slots__ = ("values", "atype", "item_name")
    kind = NodeKind.ARRAY_ELEMENT

    def __init__(
        self,
        name: QName | str,
        values,
        atype: AtomicType | str | None = None,
        *,
        attributes: Iterable[AttributeNode] = (),
        namespaces: Iterable[NamespaceNode] = (),
        item_name: str | None = None,
    ) -> None:
        super().__init__(name, attributes=attributes, namespaces=namespaces)
        arr = np.asarray(values)
        if atype is None:
            atype = atomic_type_for_dtype(arr.dtype)
        elif isinstance(atype, str):
            atype = atomic_type_for_xsd(atype)
        if atype.dtype is None:
            raise XDMTypeError("ArrayElement requires a numeric or boolean atomic type")
        if arr.ndim != 1:
            raise XDMTypeError(f"ArrayElement values must be 1-D, got shape {arr.shape}")
        self.atype = atype
        self.values = np.ascontiguousarray(arr, dtype=atype.dtype)
        #: Serialization hint only (not part of data-model equality): the
        #: element name textual XML uses for each item of this array.
        self.item_name = item_name

    def append(self, node: Node) -> Node:
        raise XDMError("ArrayElement cannot have children")

    def __len__(self) -> int:
        return int(self.values.size)

    def __repr__(self) -> str:
        return (
            f"<ArrayElement {self.name.clark()} "
            f"[{self.values.size} x {self.atype.xsd_name}]>"
        )


class DocumentNode(Node):
    """The document root: prolog nodes (comments/PIs) plus one root element."""

    __slots__ = ("children",)
    kind = NodeKind.DOCUMENT

    def __init__(self, children: Iterable[Node] = ()) -> None:
        self.children: list[Node] = list(children)

    @property
    def root(self) -> ElementNode:
        """The document element.  Raises if the document has none."""
        for child in self.children:
            if isinstance(child, ElementNode):
                return child
        raise XDMError("document has no root element")

    def append(self, node: Node) -> Node:
        self.children.append(node)
        return node

    def __repr__(self) -> str:
        return f"<DocumentNode ({len(self.children)} children)>"


def _infer_type(value) -> AtomicType:
    """Infer the atomic type of a Python/numpy scalar for untyped constructors."""
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return atomic_type_for_xsd("boolean")
    if isinstance(value, str):
        return atomic_type_for_xsd("string")
    if isinstance(value, (float, np.floating)):
        if isinstance(value, np.float32):
            return atomic_type_for_xsd("float")
        return atomic_type_for_xsd("double")
    if isinstance(value, np.integer):
        return atomic_type_for_dtype(value.dtype)
    if isinstance(value, int):
        # Smallest of int/long that fits, mirroring common databinding rules.
        if -(2**31) <= value < 2**31:
            return atomic_type_for_xsd("int")
        return atomic_type_for_xsd("long")
    raise XDMTypeError(f"cannot infer an atomic type for {type(value).__name__}")
