"""Small path-query helper over bXDM trees.

Not XPath — just the slash-separated child steps the SOAP engine and the
examples need (``"Envelope/Body/*"``), plus descendant searches by local
name.  Because bXDM extends XDM, a full XPath 2.0 engine could sit here
(§5.1 of the paper makes this point); this module implements the subset the
reproduced system actually exercises.
"""

from __future__ import annotations

from typing import Iterator

from repro.xdm.nodes import DocumentNode, ElementNode, LeafElement, ArrayElement, Node
from repro.xdm.qname import QName


def _child_elements(node: Node) -> Iterator[ElementNode]:
    if isinstance(node, (DocumentNode, ElementNode)):
        for child in node.children:
            if isinstance(child, ElementNode):
                yield child


def _matches(element: ElementNode, step: str) -> bool:
    if step == "*":
        return True
    if step.startswith("{"):
        return element.name == QName.parse(step)
    return element.name.local == step


def select(node: Node, path: str) -> list[ElementNode]:
    """Select elements by a slash-separated child path.

    Each step is a local name, Clark-notation name (``{uri}local``), or
    ``*``.  Steps match *child* elements; the search starts from the
    children of ``node``.  Returns all matches in document order.
    """
    steps = [s for s in path.split("/") if s]
    current: list[Node] = [node]
    for step in steps:
        nxt: list[ElementNode] = []
        for item in current:
            nxt.extend(c for c in _child_elements(item) if _matches(c, step))
        current = nxt  # type: ignore[assignment]
    return current  # type: ignore[return-value]


def select_one(node: Node, path: str) -> ElementNode:
    """Like :func:`select` but requires exactly one match."""
    matches = select(node, path)
    if len(matches) != 1:
        raise LookupError(f"path {path!r} matched {len(matches)} elements, expected 1")
    return matches[0]


def children_named(node: Node, name: str) -> list[ElementNode]:
    """Direct child elements whose local (or Clark) name matches."""
    return [c for c in _child_elements(node) if _matches(c, name)]


def find_first(node: Node, name: str) -> ElementNode | None:
    """Depth-first search for the first descendant element by name."""
    stack = list(reversed(list(_child_elements(node))))
    while stack:
        current = stack.pop()
        if _matches(current, name):
            return current
        if not isinstance(current, (LeafElement, ArrayElement)):
            stack.extend(reversed(list(_child_elements(current))))
    return None


def find_all(node: Node, name: str) -> list[ElementNode]:
    """All descendant elements matching ``name``, in document order."""
    out: list[ElementNode] = []
    stack = list(reversed(list(_child_elements(node))))
    while stack:
        current = stack.pop()
        if _matches(current, name):
            out.append(current)
        if not isinstance(current, (LeafElement, ArrayElement)):
            stack.extend(reversed(list(_child_elements(current))))
    return out
