"""Qualified names and the well-known namespace URIs bXDM cares about."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Reserved namespace bound to the ``xmlns`` prefix itself.
XMLNS_URI = "http://www.w3.org/2000/xmlns/"
#: Reserved namespace bound to the ``xml`` prefix.
XML_URI = "http://www.w3.org/XML/1998/namespace"
#: XML Schema datatypes (``xsd:int`` and friends).
XSD_URI = "http://www.w3.org/2001/XMLSchema"
#: XML Schema instance attributes (``xsi:type``).
XSI_URI = "http://www.w3.org/2001/XMLSchema-instance"


@dataclass(frozen=True, slots=True)
class QName:
    """An expanded XML name: ``(namespace URI, local name)``.

    ``prefix`` is only a serialization *hint* — two QNames with the same URI
    and local name are equal regardless of prefix, exactly as in the XDM
    (and as required for BXSA's tokenized namespace references, which drop
    prefixes from the wire format entirely).
    """

    local: str
    uri: str = ""
    prefix: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.local:
            raise ValueError("QName local part must be non-empty")

    @property
    def is_qualified(self) -> bool:
        return bool(self.uri)

    def clark(self) -> str:
        """James Clark notation: ``{uri}local`` (or just ``local``)."""
        return f"{{{self.uri}}}{self.local}" if self.uri else self.local

    def with_prefix(self, prefix: str) -> "QName":
        return QName(self.local, self.uri, prefix)

    @classmethod
    def parse(cls, name: str) -> "QName":
        """Parse Clark notation (``{uri}local``) or a bare local name."""
        if name.startswith("{"):
            uri, _, local = name[1:].partition("}")
            return cls(local, uri)
        return cls(name)

    def __str__(self) -> str:
        if self.prefix:
            return f"{self.prefix}:{self.local}"
        return self.local

    def __repr__(self) -> str:
        return f"QName({self.clark()!r})"
