"""The bXDM atomic-type registry.

This module is the junction between the three type systems the paper's stack
straddles:

* **XML Schema** lexical types (``xsd:int``, ``xsd:double``, …) — what appears
  in textual XML as ``xsi:type`` and what the SOAP encoding rules speak;
* **XBS type codes** — the single-byte wire identifiers used by BXSA leaf and
  array frames;
* **numpy dtypes** — the native machine representation held by
  :class:`~repro.xdm.nodes.LeafElement` / ``ArrayElement``.

Keeping one registry for all three guarantees transcodability: a typed value
can go bXDM → BXSA → bXDM → XML → bXDM and land on the same machine value
(floats are re-serialized at full round-trip precision, the caveat §4.2 of
the paper notes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.xbs.constants import TypeCode
from repro.xdm.errors import XDMTypeError
from repro.xdm.qname import XSD_URI, QName


@dataclass(frozen=True, slots=True)
class AtomicType:
    """One primitive atomic type, linked across the three type systems."""

    xsd_name: str  #: local name in the XML Schema namespace, e.g. ``"double"``
    code: TypeCode  #: XBS wire type code
    dtype: np.dtype | None  #: numpy storage dtype (None for xsd:string)

    @property
    def qname(self) -> QName:
        return QName(self.xsd_name, XSD_URI, "xsd")

    @property
    def is_numeric(self) -> bool:
        return self.dtype is not None and self.dtype.kind in "iuf"

    def __repr__(self) -> str:
        return f"AtomicType(xsd:{self.xsd_name})"


def _at(xsd_name: str, code: TypeCode, dtype: str | None) -> AtomicType:
    return AtomicType(xsd_name, code, np.dtype(dtype) if dtype else None)


#: Every atomic type bXDM supports.  The paper's LeafElement<T>/ArrayElement<T>
#: template parameter T ranges over exactly these (plus string for leaves).
ATOMIC_TYPES: tuple[AtomicType, ...] = (
    _at("byte", TypeCode.INT8, "i1"),
    _at("short", TypeCode.INT16, "i2"),
    _at("int", TypeCode.INT32, "i4"),
    _at("long", TypeCode.INT64, "i8"),
    _at("unsignedByte", TypeCode.UINT8, "u1"),
    _at("unsignedShort", TypeCode.UINT16, "u2"),
    _at("unsignedInt", TypeCode.UINT32, "u4"),
    _at("unsignedLong", TypeCode.UINT64, "u8"),
    _at("float", TypeCode.FLOAT32, "f4"),
    _at("double", TypeCode.FLOAT64, "f8"),
    _at("boolean", TypeCode.BOOL, "?"),
    _at("string", TypeCode.STRING, None),
)

_BY_XSD = {t.xsd_name: t for t in ATOMIC_TYPES}
_BY_CODE = {t.code: t for t in ATOMIC_TYPES}
_BY_DTYPE = {t.dtype.str.lstrip("<>=|"): t for t in ATOMIC_TYPES if t.dtype is not None}

#: Aliases accepted when reading xsi:type from foreign documents.
_XSD_ALIASES = {"integer": "long", "decimal": "double", "hexBinary": "unsignedByte"}


def atomic_type_for_xsd(name: str) -> AtomicType:
    """Look up by XML Schema local name (``"int"``, ``"double"``, …)."""
    name = _XSD_ALIASES.get(name, name)
    try:
        return _BY_XSD[name]
    except KeyError:
        raise XDMTypeError(f"no bXDM atomic type for xsd:{name}") from None


def atomic_type_for_code(code: TypeCode) -> AtomicType:
    """Look up by XBS wire type code."""
    try:
        return _BY_CODE[TypeCode(code)]
    except (KeyError, ValueError):
        raise XDMTypeError(f"no bXDM atomic type for type code {code!r}") from None


def atomic_type_for_dtype(dtype) -> AtomicType:
    """Look up by numpy dtype (byte order is ignored)."""
    dt = np.dtype(dtype)
    key = dt.str.lstrip("<>=|")
    try:
        return _BY_DTYPE[key]
    except KeyError:
        raise XDMTypeError(f"no bXDM atomic type for dtype {dt!r}") from None


# ---------------------------------------------------------------------------
# lexical (textual XML) forms


def format_lexical(atype: AtomicType, value) -> str:
    """Render a typed value in its XML Schema lexical form.

    Floats use Python's shortest-round-trip ``repr`` — this is the "full
    precision" re-serialization the paper's transcodability section
    describes — with the XSD special values ``INF``/``-INF``/``NaN``.
    """
    if atype.xsd_name == "string":
        return str(value)
    if atype.xsd_name == "boolean":
        return "true" if value else "false"
    if atype.dtype is not None and atype.dtype.kind == "f":
        value = float(value)
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "INF" if value > 0 else "-INF"
        return repr(value)
    return str(int(value))


def parse_lexical(atype: AtomicType, text: str):
    """Parse an XML Schema lexical form into the native machine value.

    Integers come back as Python ints (range-checked against the type's
    width), floats as Python floats, booleans as bools, strings verbatim.
    """
    if atype.xsd_name == "string":
        return text
    stripped = text.strip()
    if atype.xsd_name == "boolean":
        if stripped in ("true", "1"):
            return True
        if stripped in ("false", "0"):
            return False
        raise XDMTypeError(f"invalid xsd:boolean lexical value {text!r}")
    if atype.dtype is None:  # pragma: no cover - defensive
        raise XDMTypeError(f"type {atype} has no lexical parser")
    if atype.dtype.kind == "f":
        if stripped == "INF":
            return math.inf
        if stripped == "-INF":
            return -math.inf
        if stripped == "NaN":
            return math.nan
        try:
            return float(stripped)
        except ValueError:
            raise XDMTypeError(f"invalid xsd:{atype.xsd_name} lexical value {text!r}") from None
    try:
        value = int(stripped)
    except ValueError:
        raise XDMTypeError(f"invalid xsd:{atype.xsd_name} lexical value {text!r}") from None
    info = np.iinfo(atype.dtype)
    if not info.min <= value <= info.max:
        raise XDMTypeError(f"{value} out of range for xsd:{atype.xsd_name}")
    return value


def coerce_value(atype: AtomicType, value):
    """Validate/convert a Python value to the native form for ``atype``.

    Used by LeafElement construction so a leaf always holds a value its
    declared type can encode.
    """
    if atype.xsd_name == "string":
        if not isinstance(value, str):
            raise XDMTypeError(f"xsd:string leaf requires str, got {type(value).__name__}")
        return value
    if atype.xsd_name == "boolean":
        return bool(value)
    if atype.dtype is None:  # pragma: no cover - defensive
        raise XDMTypeError(f"cannot coerce to {atype}")
    if atype.dtype.kind == "f":
        return float(value)
    value = int(value)
    info = np.iinfo(atype.dtype)
    if not info.min <= value <= info.max:
        raise XDMTypeError(f"{value} out of range for xsd:{atype.xsd_name}")
    return value
