"""Visitor protocol over bXDM trees.

§5.2 of the paper: "every encoder behaves as a generic visitor of the bXDM
data model and generates the specific serialization during the visiting".
Both the BXSA encoder and the textual XML serializer are implemented as
:class:`Visitor` subclasses driven by :func:`walk`.

The walker is iterative (explicit stack) rather than recursive, so deeply
nested documents cannot blow the Python recursion limit.
"""

from __future__ import annotations

from repro.xdm.errors import XDMError
from repro.xdm.nodes import (
    ArrayElement,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    Node,
    PINode,
    TextNode,
)


class Visitor:
    """Base visitor; subclasses override the hooks they care about.

    Element-like nodes get paired enter/leave calls; atoms (text, comment,
    PI, leaf, array) get a single call.  Attributes and namespace nodes are
    not visited separately — they are part of their element, matching BXSA's
    frame granularity decision (§4.1).
    """

    def enter_document(self, node: DocumentNode) -> None: ...

    def leave_document(self, node: DocumentNode) -> None: ...

    def enter_element(self, node: ElementNode) -> None: ...

    def leave_element(self, node: ElementNode) -> None: ...

    def visit_leaf(self, node: LeafElement) -> None: ...

    def visit_array(self, node: ArrayElement) -> None: ...

    def visit_text(self, node: TextNode) -> None: ...

    def visit_comment(self, node: CommentNode) -> None: ...

    def visit_pi(self, node: PINode) -> None: ...


_ENTER, _LEAVE = 0, 1


def walk(node: Node, visitor: Visitor) -> None:
    """Drive ``visitor`` over the tree rooted at ``node`` in document order."""
    stack: list[tuple[int, Node]] = [(_ENTER, node)]
    while stack:
        action, current = stack.pop()
        if action == _LEAVE:
            if isinstance(current, DocumentNode):
                visitor.leave_document(current)
            else:
                visitor.leave_element(current)  # type: ignore[arg-type]
            continue
        if isinstance(current, LeafElement):
            visitor.visit_leaf(current)
        elif isinstance(current, ArrayElement):
            visitor.visit_array(current)
        elif isinstance(current, DocumentNode):
            visitor.enter_document(current)
            stack.append((_LEAVE, current))
            for child in reversed(current.children):
                stack.append((_ENTER, child))
        elif isinstance(current, ElementNode):
            visitor.enter_element(current)
            stack.append((_LEAVE, current))
            for child in reversed(current.children):
                stack.append((_ENTER, child))
        elif isinstance(current, TextNode):
            visitor.visit_text(current)
        elif isinstance(current, CommentNode):
            visitor.visit_comment(current)
        elif isinstance(current, PINode):
            visitor.visit_pi(current)
        else:
            raise XDMError(f"walk() cannot visit {type(current).__name__}")


def iter_nodes(node: Node):
    """Yield every node in document order (elements before their content)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (DocumentNode, ElementNode)) and not isinstance(
            current, (LeafElement, ArrayElement)
        ):
            stack.extend(reversed(current.children))


def count_nodes(node: Node) -> int:
    """Total number of nodes in the tree (attributes/namespaces excluded)."""
    return sum(1 for _ in iter_nodes(node))


def tree_depth(node: Node) -> int:
    """Maximum element nesting depth (document counts as depth 0)."""
    best = 0
    stack: list[tuple[Node, int]] = [(node, 0)]
    while stack:
        current, depth = stack.pop()
        best = max(best, depth)
        if isinstance(current, (DocumentNode, ElementNode)) and not isinstance(
            current, (LeafElement, ArrayElement)
        ):
            for child in current.children:
                stack.append((child, depth + 1))
    return best
