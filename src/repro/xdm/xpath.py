"""XPath-lite: a small path language over bXDM.

§5.1 of the paper: "since bXDM is extended from XDM, any XDM-based XML
processing (e.g. XPath or XSLT) should be able to run with binary XML with
minor modification."  This module demonstrates that point with a useful
subset of XPath 1.0 location paths, evaluated directly on bXDM trees —
meaning the *same* query runs over a document regardless of whether it
arrived as textual XML or BXSA.

Supported grammar::

    path        := step ('/' step | '//' step)*  | '//' step ...
    step        := nametest predicate*
    nametest    := NAME | '*' | '{uri}NAME'
    predicate   := '[' INTEGER ']'                 positional (1-based)
                 | '[@' NAME '="' VALUE '"' ']'    attribute equality
                 | '[@' NAME ']'                   attribute presence
                 | '[' NAME '="' VALUE '"' ']'     child text equality

Examples::

    evaluate(doc, "Envelope/Body/*")
    evaluate(doc, "//reading[@station]")
    evaluate(doc, "//item[3]")
    evaluate(doc, "//port[location=\\"svc\\"]")

Absolute vs relative makes no difference here: evaluation always starts at
the node you pass (document or element).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.xdm.errors import XDMError
from repro.xdm.nodes import ArrayElement, DocumentNode, ElementNode, LeafElement, Node
from repro.xdm.qname import QName


class XPathError(XDMError):
    """Malformed path expression."""


# ---------------------------------------------------------------------------
# parsing

_STEP_RE = re.compile(
    r"""
    (?P<name>\{[^}]*\}[^\W\d][\w.\-]* | [^\W\d][\w.\-]* | \*)
    (?P<preds>(?:\[[^\]]*\])*)
    """,
    re.VERBOSE | re.UNICODE,
)
_PRED_RE = re.compile(r"\[([^\]]*)\]")
_ATTR_EQ_RE = re.compile(r'@([^\W\d][\w.\-]*)\s*=\s*"([^"]*)"', re.UNICODE)
_ATTR_PRESENT_RE = re.compile(r"@([^\W\d][\w.\-]*)$", re.UNICODE)
_CHILD_EQ_RE = re.compile(r'([^\W\d][\w.\-]*)\s*=\s*"([^"]*)"', re.UNICODE)


@dataclass(frozen=True)
class _Step:
    name: str  #: local name, Clark name, or "*"
    descendant: bool  #: True for '//' axis
    predicates: tuple


def _parse_predicate(text: str):
    text = text.strip()
    if text.isdigit():
        index = int(text)
        if index < 1:
            raise XPathError(f"positional predicates are 1-based, got [{text}]")
        return ("index", index)
    m = _ATTR_EQ_RE.fullmatch(text)
    if m:
        return ("attr-eq", m.group(1), m.group(2))
    m = _ATTR_PRESENT_RE.fullmatch(text)
    if m:
        return ("attr-present", m.group(1))
    m = _CHILD_EQ_RE.fullmatch(text)
    if m:
        return ("child-eq", m.group(1), m.group(2))
    raise XPathError(f"unsupported predicate [{text}]")


def parse_path(path: str) -> list[_Step]:
    """Compile a path expression into steps."""
    if not path or path in ("/", "//"):
        raise XPathError(f"empty path {path!r}")
    steps: list[_Step] = []
    if path.startswith("//"):
        descendant, pos = True, 2
    elif path.startswith("/"):
        descendant, pos = False, 1
    else:
        descendant, pos = False, 0
    while pos < len(path):
        m = _STEP_RE.match(path, pos)
        if not m or m.end() == pos:
            raise XPathError(f"cannot parse step at {path[pos:]!r}")
        predicates = tuple(
            _parse_predicate(p) for p in _PRED_RE.findall(m.group("preds"))
        )
        steps.append(_Step(m.group("name"), descendant, predicates))
        pos = m.end()
        if pos == len(path):
            break
        if path.startswith("//", pos):
            descendant, pos = True, pos + 2
        elif path.startswith("/", pos):
            descendant, pos = False, pos + 1
        else:
            raise XPathError(f"expected '/' at {path[pos:]!r}")
    if not steps:
        raise XPathError(f"no steps in path {path!r}")
    return steps


# ---------------------------------------------------------------------------
# evaluation


def _matches_name(node: ElementNode, name: str) -> bool:
    if name == "*":
        return True
    if name.startswith("{"):
        return node.name == QName.parse(name)
    return node.name.local == name


def _child_elements(node: Node):
    if isinstance(node, (DocumentNode, ElementNode)) and not isinstance(
        node, (LeafElement, ArrayElement)
    ):
        for child in node.children:
            if isinstance(child, ElementNode):
                yield child


def _descendant_elements(node: Node):
    stack = list(_child_elements(node))[::-1]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(list(_child_elements(current))[::-1])


def _passes(node: ElementNode, predicate, position: int) -> bool:
    kind = predicate[0]
    if kind == "index":
        return position == predicate[1]
    if kind == "attr-present":
        return node.attribute(predicate[1]) is not None
    if kind == "attr-eq":
        attr = node.attribute(predicate[1])
        if attr is None:
            return False
        from repro.xdm.types import format_lexical

        return format_lexical(attr.atype, attr.value) == predicate[2]
    if kind == "child-eq":
        for child in _child_elements(node):
            if child.name.local == predicate[1] and child.text_content() == predicate[2]:
                return True
        return False
    raise XPathError(f"unknown predicate kind {kind!r}")  # pragma: no cover


def evaluate(node: Node, path: str) -> list[ElementNode]:
    """Evaluate a path expression; returns matches in document order."""
    steps = parse_path(path)
    current: list[ElementNode] = [node]  # type: ignore[list-item]
    for step in steps:
        gathered: list[ElementNode] = []
        for context in current:
            axis = _descendant_elements(context) if step.descendant else _child_elements(context)
            candidates = [e for e in axis if _matches_name(e, step.name)]
            for predicate in step.predicates:
                candidates = [
                    e
                    for position, e in enumerate(candidates, start=1)
                    if _passes(e, predicate, position)
                ]
            gathered.extend(candidates)
        # de-duplicate while keeping order ('//' from overlapping contexts)
        seen: set[int] = set()
        current = [e for e in gathered if not (id(e) in seen or seen.add(id(e)))]
    return current


def evaluate_one(node: Node, path: str) -> ElementNode:
    """Like :func:`evaluate` but requires exactly one match."""
    matches = evaluate(node, path)
    if len(matches) != 1:
        raise LookupError(f"path {path!r} matched {len(matches)} nodes, expected 1")
    return matches[0]
