"""Textual XML 1.0 codec for bXDM.

This package is the ``XML 1.0`` leg of the paper's encoding layer (Figure 3):
a from-scratch, namespace-aware XML parser and serializer that map between
byte streams and bXDM trees.

Typed values travel through ``xsi:type`` annotations, "as required by the
SOAP encoding rule" (§4.2 of the paper): with ``emit_types=True`` (the
default) a :class:`~repro.xdm.nodes.LeafElement` serializes as
``<n xsi:type="xsd:int">5</n>`` and an ``ArrayElement`` as an item list with
a ``bx:itemType`` annotation, so a schema-less reader can reconstruct the
typed bXDM tree.  With ``emit_types=False`` the output is plain XML — the
"schema assumed" mode the paper's Table 1 measures (namespace-free, shortest
tag names).
"""

from repro.xmlcodec.errors import XMLError, XMLParseError, XMLSerializeError
from repro.xmlcodec.escape import escape_attribute, escape_text, unescape
from repro.xmlcodec.parser import XMLParser, parse_document, parse_fragment
from repro.xmlcodec.serializer import XMLSerializer, serialize
from repro.xmlcodec.typed import BX_URI, DEFAULT_ITEM_NAME

__all__ = [
    "BX_URI",
    "DEFAULT_ITEM_NAME",
    "XMLError",
    "XMLParseError",
    "XMLParser",
    "XMLSerializeError",
    "XMLSerializer",
    "escape_attribute",
    "escape_text",
    "parse_document",
    "parse_fragment",
    "serialize",
    "unescape",
]
