"""Exception hierarchy for the textual XML codec."""


class XMLError(Exception):
    """Base class for XML codec errors."""


class XMLParseError(XMLError):
    """Raised for malformed or non-well-formed input.

    Carries the byte/character offset where the problem was detected so the
    caller can point at the offending spot in large documents.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


class XMLSerializeError(XMLError):
    """Raised when a bXDM tree cannot be rendered as textual XML."""
