"""Character escaping for XML text and attribute values.

The hot path matters here: Table 1 and Figures 4-6 of the paper charge the
textual encoding for exactly this kind of work, so escaping is implemented
with ``str.translate``-free fast paths — the common case (nothing to escape)
costs one containment scan and no allocation.
"""

from __future__ import annotations

from repro.xmlcodec.errors import XMLParseError

_TEXT_NEEDS = ("&", "<", ">", "\r")
_ATTR_NEEDS = ("&", "<", ">", '"', "\n", "\t", "\r")

_NAMED_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


def escape_text(value: str) -> str:
    """Escape character data (``&``, ``<``, ``>`` for ``]]>`` safety, and
    ``\\r`` as ``&#13;`` — a bare carriage return in character data would
    otherwise be normalized to ``\\n`` by any conforming XML parser,
    corrupting round-tripped string payloads)."""
    if not any(c in value for c in _TEXT_NEEDS):
        return value
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#13;")
    )


def escape_attribute(value: str) -> str:
    """Escape a double-quoted attribute value, normalizing whitespace chars."""
    if not any(c in value for c in _ATTR_NEEDS):
        return value
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
        .replace("\r", "&#13;")
    )


def unescape(value: str, offset_base: int = 0) -> str:
    """Expand entity and character references in parsed content.

    Supports the five XML named entities and decimal/hex character
    references.  Raises :class:`XMLParseError` for unknown or malformed
    references (well-formedness requires it).
    """
    amp = value.find("&")
    if amp < 0:
        return value
    out: list[str] = []
    pos = 0
    n = len(value)
    while amp >= 0:
        out.append(value[pos:amp])
        semi = value.find(";", amp + 1, amp + 32)
        if semi < 0:
            raise XMLParseError("unterminated entity reference", offset_base + amp)
        entity = value[amp + 1 : semi]
        if entity.startswith("#x") or entity.startswith("#X"):
            try:
                cp = int(entity[2:], 16)
            except ValueError:
                raise XMLParseError(f"bad character reference &{entity};", offset_base + amp)
            out.append(_codepoint(cp, offset_base + amp))
        elif entity.startswith("#"):
            try:
                cp = int(entity[1:])
            except ValueError:
                raise XMLParseError(f"bad character reference &{entity};", offset_base + amp)
            out.append(_codepoint(cp, offset_base + amp))
        else:
            try:
                out.append(_NAMED_ENTITIES[entity])
            except KeyError:
                raise XMLParseError(f"unknown entity &{entity};", offset_base + amp) from None
        pos = semi + 1
        amp = value.find("&", pos)
    out.append(value[pos:])
    return "".join(out)


def _codepoint(cp: int, offset: int) -> str:
    if not (0 <= cp <= 0x10FFFF) or (0xD800 <= cp <= 0xDFFF):
        raise XMLParseError(f"character reference U+{cp:04X} out of range", offset)
    if cp in (0x9, 0xA, 0xD) or 0x20 <= cp:
        return chr(cp)
    raise XMLParseError(f"control character U+{cp:04X} not allowed in XML", offset)
