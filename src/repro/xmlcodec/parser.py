"""A from-scratch, namespace-aware XML 1.0 parser producing bXDM trees.

The parser is a hand-written scanner over a Python string — no external XML
library is used anywhere in this project.  It enforces the well-formedness
rules the reproduction needs (matched tags, single root, attribute
uniqueness, declared prefixes, legal references) and reconstructs *typed*
bXDM nodes from ``xsi:type`` annotations when ``typed=True`` (the default),
per the convention in :mod:`repro.xmlcodec.typed`.

DTDs are not processed: a ``<!DOCTYPE ...>`` without an internal subset is
skipped, one with an internal subset is rejected — the paper's stack never
relies on DTDs, and silently ignoring entity definitions would be wrong.
"""

from __future__ import annotations

import re

import numpy as np

from repro.xdm.nodes import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    NamespaceNode,
    PINode,
    TextNode,
)
from repro.xdm.qname import QName, XML_URI, XSD_URI
from repro.xdm.types import atomic_type_for_xsd, parse_lexical
from repro.xdm.errors import XDMTypeError
from repro.xmlcodec.errors import XMLParseError
from repro.xmlcodec.escape import unescape
from repro.xmlcodec.typed import ARRAY_TYPE, BX_ITEM_TYPE, XSI_TYPE, split_qname_text

_NAME_RE = re.compile(r"[^\W\d][\w.\-]*", re.UNICODE)
_WS = " \t\r\n"

#: Fast-path pattern for one simple array item: ``<n>text</n>`` with no
#: prefix, attributes, entities or markup in the text.
_SIMPLE_ITEM_RE = re.compile(r"\s*<([^\W\d][\w.\-]*)>([^<&]*)</\1>", re.UNICODE)


def parse_document(data: str | bytes, *, typed: bool = True) -> DocumentNode:
    """Parse a complete XML document into a :class:`DocumentNode`."""
    return XMLParser(_decode(data), typed=typed).parse_document()


def parse_fragment(data: str | bytes, *, typed: bool = True) -> ElementNode:
    """Parse a single element (no prolog required) into an element node."""
    return XMLParser(_decode(data), typed=typed).parse_fragment()


def _decode(data: str | bytes) -> str:
    if isinstance(data, str):
        return data
    raw = bytes(data)
    if raw[:3] == b"\xef\xbb\xbf":
        raw = raw[3:]
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise XMLParseError(f"document is not valid UTF-8: {exc}") from exc


class XMLParser:
    """One-shot parser over an in-memory document string."""

    def __init__(self, text: str, *, typed: bool = True) -> None:
        self._s = text
        self._p = 0
        self._typed = typed
        # namespace scopes: list of dicts, innermost last
        self._ns_stack: list[dict[str, str]] = [{"xml": XML_URI}]
        # QName interning: large documents repeat the same few names
        # millions of times; the cache turns each repeat into a dict hit.
        self._qname_cache: dict[tuple[str, str], QName] = {}

    # ------------------------------------------------------------------
    # entry points

    def parse_document(self) -> DocumentNode:
        doc = DocumentNode()
        self._skip_bom()
        self._maybe_xml_decl()
        root_seen = False
        while self._p < len(self._s):
            ch = self._s[self._p]
            if ch in _WS:
                self._p += 1
                continue
            if ch != "<":
                raise XMLParseError("text content outside the root element", self._p)
            node = self._parse_markup(allow_doctype=not root_seen)
            if node is None:
                continue  # skipped DOCTYPE
            if isinstance(node, ElementNode):
                if root_seen:
                    raise XMLParseError("more than one root element", self._p)
                root_seen = True
            doc.children.append(node)
        if not root_seen:
            raise XMLParseError("document has no root element", self._p)
        return doc

    def parse_fragment(self) -> ElementNode:
        self._skip_bom()
        self._skip_ws()
        if not self._s.startswith("<", self._p):
            raise XMLParseError("fragment must start with an element", self._p)
        node = self._parse_markup(allow_doctype=False)
        if not isinstance(node, ElementNode):
            raise XMLParseError("fragment must be a single element", self._p)
        self._skip_ws()
        if self._p != len(self._s):
            raise XMLParseError("trailing content after fragment", self._p)
        return node

    # ------------------------------------------------------------------
    # scanning helpers

    def _skip_bom(self) -> None:
        if self._s.startswith("﻿", self._p):
            self._p += 1

    def _skip_ws(self) -> None:
        while self._p < len(self._s) and self._s[self._p] in _WS:
            self._p += 1

    def _expect(self, literal: str) -> None:
        if not self._s.startswith(literal, self._p):
            raise XMLParseError(f"expected {literal!r}", self._p)
        self._p += len(literal)

    def _read_name(self) -> str:
        m = _NAME_RE.match(self._s, self._p)
        if not m:
            raise XMLParseError("expected a name", self._p)
        name = m.group(0)
        self._p = m.end()
        # allow one colon (prefix:local)
        if self._s.startswith(":", self._p):
            self._p += 1
            m2 = _NAME_RE.match(self._s, self._p)
            if not m2:
                raise XMLParseError("expected a local name after ':'", self._p)
            self._p = m2.end()
            return f"{name}:{m2.group(0)}"
        return name

    # ------------------------------------------------------------------
    # prolog

    def _maybe_xml_decl(self) -> None:
        if self._s.startswith("<?xml", self._p) and self._s[self._p + 5 : self._p + 6] in _WS:
            end = self._s.find("?>", self._p)
            if end < 0:
                raise XMLParseError("unterminated XML declaration", self._p)
            decl = self._s[self._p + 5 : end]
            if "encoding" in decl:
                m = re.search(r"encoding\s*=\s*[\"']([^\"']+)[\"']", decl)
                if m and m.group(1).lower().replace("_", "-") not in ("utf-8", "us-ascii"):
                    raise XMLParseError(f"unsupported encoding {m.group(1)!r}", self._p)
            self._p = end + 2

    # ------------------------------------------------------------------
    # markup dispatch (cursor is on '<')

    def _parse_markup(self, *, allow_doctype: bool):
        s, p = self._s, self._p
        if s.startswith("<!--", p):
            return self._parse_comment()
        if s.startswith("<![CDATA[", p):
            raise XMLParseError("CDATA section outside element content", p)
        if s.startswith("<!DOCTYPE", p):
            if not allow_doctype:
                raise XMLParseError("misplaced DOCTYPE", p)
            self._skip_doctype()
            return None
        if s.startswith("<?", p):
            return self._parse_pi()
        if s.startswith("</", p):
            raise XMLParseError("unexpected end tag", p)
        return self._parse_element()

    def _parse_comment(self) -> CommentNode:
        self._expect("<!--")
        end = self._s.find("--", self._p)
        if end < 0:
            raise XMLParseError("unterminated comment", self._p)
        if not self._s.startswith("-->", end):
            raise XMLParseError("'--' not allowed inside comments", end)
        node = CommentNode(self._s[self._p : end])
        self._p = end + 3
        return node

    def _parse_pi(self) -> PINode:
        start = self._p
        self._expect("<?")
        target = self._read_name()
        if target.lower() == "xml":
            raise XMLParseError("XML declaration not allowed here", start)
        end = self._s.find("?>", self._p)
        if end < 0:
            raise XMLParseError("unterminated processing instruction", start)
        data = self._s[self._p : end].lstrip(_WS)
        self._p = end + 2
        return PINode(target, data)

    def _skip_doctype(self) -> None:
        start = self._p
        end = self._s.find(">", self._p)
        if end < 0:
            raise XMLParseError("unterminated DOCTYPE", start)
        if "[" in self._s[start:end]:
            raise XMLParseError("DOCTYPE internal subsets are not supported", start)
        self._p = end + 1

    # ------------------------------------------------------------------
    # elements

    def _parse_element(self) -> ElementNode:
        start = self._p
        self._expect("<")
        raw_name = self._read_name()
        raw_attrs = self._parse_attributes()
        self._skip_ws()
        if self._s.startswith("/>", self._p):
            self._p += 2
            empty = True
        else:
            self._expect(">")
            empty = False

        ns_decls, plain_attrs = self._split_namespace_declarations(raw_attrs, start)
        if ns_decls:
            scope = dict(self._ns_stack[-1])
            for decl in ns_decls:
                scope[decl.prefix] = decl.uri
        else:
            scope = self._ns_stack[-1]  # scopes are never mutated: share it
        self._ns_stack.append(scope)
        try:
            name = self._resolve_element_name(raw_name, start)
            attributes = self._resolve_attributes(plain_attrs, start)
            if not empty and self._typed and attributes:
                fast = self._try_fast_array(raw_name, name, attributes, ns_decls, start)
                if fast is not None:
                    return fast
            children = [] if empty else self._parse_content(raw_name)
            return self._finish_element(name, attributes, ns_decls, children, start)
        finally:
            self._ns_stack.pop()

    # ------------------------------------------------------------------
    # typed-array fast path

    def _try_fast_array(self, raw_name, name, attributes, ns_decls, start):
        """Bulk-parse ``bx:Array`` content without building item nodes.

        The general path constructs an ElementNode + TextNode per item and
        then throws them away rebuilding the packed array; for the paper's
        million-element messages that dominates everything.  When the
        element is annotated as an array and its content is a plain run of
        ``<n>text</n>`` items, this path cuts the segment out with one
        ``str.find`` and converts the texts in bulk.  Any anomaly —
        entities, comments, nested markup, mixed item names — returns None
        and the general (fully-checking) path takes over.
        """
        xsi_attr = next((a for a in attributes if a.name == XSI_TYPE), None)
        if xsi_attr is None:
            return None
        type_qname = self._resolve_type_value(str(xsi_attr.value), start)
        if type_qname != ARRAY_TYPE:
            return None
        item_attr = next((a for a in attributes if a.name == BX_ITEM_TYPE), None)
        if item_attr is None:
            return None
        item_qname = self._resolve_type_value(str(item_attr.value), start)
        if item_qname is None or item_qname.uri != XSD_URI:
            return None
        try:
            atype = atomic_type_for_xsd(item_qname.local)
        except XDMTypeError:
            return None
        if atype.dtype is None:
            return None

        # Match items in place (the item name may equal the array element's
        # own name, so searching for the close tag first would be ambiguous).
        s = self._s
        pos = self._p
        item_name: str | None = None
        texts: list[str] = []
        match = _SIMPLE_ITEM_RE.match
        while True:
            m = match(s, pos)
            if m is None:
                break
            if item_name is None:
                item_name = m.group(1)
            elif m.group(1) != item_name:
                return None
            texts.append(m.group(2))
            pos = m.end()

        # the close tag must follow immediately (modulo whitespace)
        n = len(s)
        while pos < n and s[pos] in _WS:
            pos += 1
        close = f"</{raw_name}"
        if not s.startswith(close, pos):
            return None  # mixed/unclean content: general path takes over
        after = pos + len(close)
        while after < n and s[after] in _WS:
            after += 1
        if after >= n or s[after] != ">":
            return None

        values = self._bulk_convert(texts, atype, start)
        if values is None:
            return None
        self._p = after + 1
        kept = [a for a in attributes if a.name not in (XSI_TYPE, BX_ITEM_TYPE)]
        return ArrayElement(
            name, values, atype, attributes=kept, namespaces=ns_decls, item_name=item_name
        )

    @staticmethod
    def _bulk_convert(texts, atype, offset):
        """Convert lexical forms to a packed array, vectorized when clean."""
        import numpy as _np

        dtype = atype.dtype
        try:
            if dtype.kind == "f":
                return _np.array(texts, dtype=dtype)
            if dtype.kind in "iu":
                wide = _np.array(texts, dtype="i8" if dtype.kind == "i" else "u8")
                info = _np.iinfo(dtype)
                if wide.size and (wide.min() < info.min or wide.max() > info.max):
                    raise XMLParseError(
                        f"array item out of range for xsd:{atype.xsd_name}", offset
                    )
                return wide.astype(dtype)
            if dtype.kind == "b":
                out = _np.empty(len(texts), dtype="?")
                for i, t in enumerate(texts):
                    v = t.strip()
                    if v in ("true", "1"):
                        out[i] = True
                    elif v in ("false", "0"):
                        out[i] = False
                    else:
                        raise XMLParseError(f"invalid xsd:boolean item {t!r}", offset)
                return out
        except (ValueError, OverflowError):
            # numpy could not parse some lexical form (e.g. INF/NaN spelled
            # the XSD way, exotic whitespace): per-item fallback
            try:
                return _np.array(
                    [parse_lexical(atype, t) for t in texts], dtype=dtype
                )
            except XDMTypeError:
                return None
        return None

    def _parse_attributes(self) -> list[tuple[str, str, int]]:
        attrs: list[tuple[str, str, int]] = []
        seen: set[str] = set()
        while True:
            before = self._p
            self._skip_ws()
            if self._p < len(self._s) and self._s[self._p] in (">", "/"):
                return attrs
            if self._p == before:
                raise XMLParseError("expected whitespace before attribute", self._p)
            at = self._p
            name = self._read_name()
            if name in seen:
                raise XMLParseError(f"duplicate attribute {name!r}", at)
            seen.add(name)
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            if self._p >= len(self._s) or self._s[self._p] not in "\"'":
                raise XMLParseError("attribute value must be quoted", self._p)
            quote = self._s[self._p]
            self._p += 1
            end = self._s.find(quote, self._p)
            if end < 0:
                raise XMLParseError("unterminated attribute value", at)
            raw_value = self._s[self._p : end]
            if "<" in raw_value:
                raise XMLParseError("'<' not allowed in attribute values", self._p)
            value = unescape(raw_value, self._p)
            self._p = end + 1
            attrs.append((name, value, at))

    def _split_namespace_declarations(
        self, raw_attrs: list[tuple[str, str, int]], offset: int
    ) -> tuple[list[NamespaceNode], list[tuple[str, str, int]]]:
        decls: list[NamespaceNode] = []
        plain: list[tuple[str, str, int]] = []
        for name, value, at in raw_attrs:
            if name == "xmlns":
                decls.append(NamespaceNode("", value))
            elif name.startswith("xmlns:"):
                prefix = name[6:]
                if prefix == "xmlns" or (prefix == "xml" and value != XML_URI):
                    raise XMLParseError(f"illegal namespace declaration {name!r}", at)
                if not value:
                    raise XMLParseError("empty namespace URI for a prefix", at)
                decls.append(NamespaceNode(prefix, value))
            else:
                plain.append((name, value, at))
        return decls, plain

    def _resolve_prefix(self, prefix: str, offset: int) -> str:
        scope = self._ns_stack[-1]
        try:
            return scope[prefix]
        except KeyError:
            raise XMLParseError(f"undeclared namespace prefix {prefix!r}", offset) from None

    def _resolve_element_name(self, raw: str, offset: int) -> QName:
        prefix, _, local = raw.rpartition(":")
        if prefix:
            uri = self._resolve_prefix(prefix, offset)
        else:
            local = raw
            uri = self._ns_stack[-1].get("", "")
        key = (raw, uri)
        cached = self._qname_cache.get(key)
        if cached is None:
            cached = QName(local, uri, prefix)
            self._qname_cache[key] = cached
        return cached

    def _resolve_attributes(
        self, plain: list[tuple[str, str, int]], offset: int
    ) -> list[AttributeNode]:
        attributes: list[AttributeNode] = []
        seen: set[QName] = set()
        for name, value, at in plain:
            prefix, _, local = name.rpartition(":")
            if prefix:
                qname = QName(local, self._resolve_prefix(prefix, at), prefix)
            else:
                qname = QName(name)  # unprefixed attributes are in no namespace
            if qname in seen:
                raise XMLParseError(f"duplicate attribute {qname.clark()}", at)
            seen.add(qname)
            attributes.append(AttributeNode(qname, value))
        return attributes

    def _parse_content(self, raw_name: str) -> list:
        children: list = []
        s = self._s
        while True:
            lt = s.find("<", self._p)
            if lt < 0:
                raise XMLParseError(f"unterminated element <{raw_name}>", self._p)
            if lt > self._p:
                raw_text = s[self._p : lt]
                text = unescape(raw_text, self._p)
                if "]]>" in raw_text:
                    raise XMLParseError("']]>' not allowed in character data", self._p)
                children.append(TextNode(text))
                self._p = lt
            if s.startswith("</", self._p):
                self._p += 2
                end_name = self._read_name()
                if end_name != raw_name:
                    raise XMLParseError(
                        f"end tag </{end_name}> does not match <{raw_name}>", self._p
                    )
                self._skip_ws()
                self._expect(">")
                return _merge_text(children)
            if s.startswith("<![CDATA[", self._p):
                end = s.find("]]>", self._p + 9)
                if end < 0:
                    raise XMLParseError("unterminated CDATA section", self._p)
                children.append(TextNode(s[self._p + 9 : end]))
                self._p = end + 3
                continue
            if s.startswith("<!--", self._p):
                children.append(self._parse_comment())
                continue
            if s.startswith("<?", self._p):
                children.append(self._parse_pi())
                continue
            children.append(self._parse_element())

    # ------------------------------------------------------------------
    # typed reconstruction

    def _finish_element(
        self,
        name: QName,
        attributes: list[AttributeNode],
        ns_decls: list[NamespaceNode],
        children: list,
        offset: int,
    ) -> ElementNode:
        if self._typed:
            xsi_attr = next((a for a in attributes if a.name == XSI_TYPE), None)
            if xsi_attr is not None:
                type_qname = self._resolve_type_value(str(xsi_attr.value), offset)
                if type_qname is not None:
                    if type_qname == ARRAY_TYPE:
                        return self._build_array(name, attributes, ns_decls, children, offset)
                    if type_qname.uri == XSD_URI:
                        return self._build_leaf(
                            name, type_qname.local, attributes, ns_decls, children, offset
                        )
        return ElementNode(
            name, attributes=attributes, namespaces=ns_decls, children=children
        )

    def _resolve_type_value(self, value: str, offset: int) -> QName | None:
        prefix, local = split_qname_text(value.strip())
        scope = self._ns_stack[-1]
        uri = scope.get(prefix)
        if uri is None:
            if prefix:
                raise XMLParseError(
                    f"xsi:type uses undeclared prefix {prefix!r}", offset
                )
            return None
        return QName(local, uri)

    def _build_leaf(
        self, name, xsd_local, attributes, ns_decls, children, offset
    ) -> ElementNode:
        try:
            atype = atomic_type_for_xsd(xsd_local)
        except XDMTypeError:
            # Unknown schema type: keep the element untyped rather than fail.
            return ElementNode(name, attributes=attributes, namespaces=ns_decls, children=children)
        texts = []
        for child in children:
            if isinstance(child, TextNode):
                texts.append(child.text)
            elif isinstance(child, CommentNode):
                continue
            else:
                raise XMLParseError(
                    f"element typed xsd:{xsd_local} must have text-only content", offset
                )
        try:
            value = parse_lexical(atype, "".join(texts))
        except XDMTypeError as exc:
            raise XMLParseError(str(exc), offset) from exc
        kept = [a for a in attributes if a.name != XSI_TYPE]
        return LeafElement(name, value, atype, attributes=kept, namespaces=ns_decls)

    def _build_array(self, name, attributes, ns_decls, children, offset) -> ElementNode:
        item_attr = next((a for a in attributes if a.name == BX_ITEM_TYPE), None)
        if item_attr is None:
            raise XMLParseError("bx:Array element is missing bx:itemType", offset)
        type_qname = self._resolve_type_value(str(item_attr.value), offset)
        if type_qname is None or type_qname.uri != XSD_URI:
            raise XMLParseError(f"bx:itemType must name an xsd type, got {item_attr.value!r}", offset)
        try:
            atype = atomic_type_for_xsd(type_qname.local)
        except XDMTypeError as exc:
            raise XMLParseError(str(exc), offset) from exc
        if atype.dtype is None:
            raise XMLParseError("arrays of xsd:string are not supported", offset)
        values: list = []
        item_name: str | None = None
        for child in children:
            if isinstance(child, TextNode):
                if child.text.strip():
                    raise XMLParseError("stray text inside bx:Array content", offset)
                continue
            if isinstance(child, CommentNode):
                continue
            if not isinstance(child, ElementNode):
                raise XMLParseError("bx:Array content must be item elements", offset)
            if item_name is None:
                item_name = child.name.local
            elif child.name.local != item_name:
                raise XMLParseError(
                    f"bx:Array items must share one name ({item_name!r} vs {child.name.local!r})",
                    offset,
                )
            if isinstance(child, LeafElement):
                values.append(child.value)
            else:
                try:
                    values.append(parse_lexical(atype, child.text_content()))
                except XDMTypeError as exc:
                    raise XMLParseError(str(exc), offset) from exc
        kept = [a for a in attributes if a.name not in (XSI_TYPE, BX_ITEM_TYPE)]
        arr = np.asarray(values, dtype=atype.dtype) if values else np.empty(0, dtype=atype.dtype)
        return ArrayElement(
            name, arr, atype, attributes=kept, namespaces=ns_decls, item_name=item_name
        )


def _merge_text(children: list) -> list:
    """Coalesce adjacent text nodes (CDATA splits create them)."""
    out: list = []
    for child in children:
        if isinstance(child, TextNode) and out and isinstance(out[-1], TextNode):
            out[-1] = TextNode(out[-1].text + child.text)
        else:
            out.append(child)
    return out
