"""bXDM → textual XML 1.0 serializer.

Implemented as a :class:`~repro.xdm.visitor.Visitor` over the data model,
exactly as §5.2 of the paper prescribes for encoders.  Namespace scoping is
handled with an explicit stack; prefixes are taken from QName hints when
possible and auto-generated (``ns1``, ``ns2``, …) otherwise, with
declarations emitted on the element that first needs them.

Typed nodes follow the convention in :mod:`repro.xmlcodec.typed`.  Note that
the per-value number→text conversion in :meth:`XMLSerializer.visit_array` is
*the* cost the paper's evaluation charges to textual XML — it is implemented
with the fastest pure-Python idiom available (bulk ``tolist()`` + ``repr``)
so the comparison against BXSA is fair, not a strawman.
"""

from __future__ import annotations

import io
import math

from repro.xdm.nodes import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    ElementNode,
    LeafElement,
    Node,
    PINode,
    TextNode,
)
from repro.xdm.qname import QName, XML_URI, XSD_URI, XSI_URI
from repro.xdm.types import format_lexical
from repro.xdm.visitor import Visitor, walk
from repro.xmlcodec.errors import XMLSerializeError
from repro.xmlcodec.escape import escape_attribute, escape_text
from repro.xmlcodec.typed import BX_URI, DEFAULT_ITEM_NAME, WELL_KNOWN_PREFIXES


def serialize(
    node: Node,
    *,
    emit_types: bool = True,
    xml_declaration: bool = False,
    item_name: str = DEFAULT_ITEM_NAME,
) -> str:
    """Serialize a bXDM tree (document or element) to an XML string."""
    ser = XMLSerializer(
        emit_types=emit_types, xml_declaration=xml_declaration, item_name=item_name
    )
    return ser.run(node)


def _float_lexical(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "INF"
    if value == -math.inf:
        return "-INF"
    return repr(value)


class XMLSerializer(Visitor):
    """Stateful serializer; one instance handles one tree per :meth:`run`.

    Parameters
    ----------
    emit_types:
        Emit ``xsi:type`` / ``bx:itemType`` annotations so a schema-less
        parser can rebuild typed bXDM nodes.  Turn off for the paper's
        "schema assumed" measurements (plain, namespace-free XML).
    xml_declaration:
        Prepend ``<?xml version="1.0" encoding="UTF-8"?>``.
    item_name:
        Element name for array items when the array carries no
        ``item_name`` hint of its own.
    """

    def __init__(
        self,
        *,
        emit_types: bool = True,
        xml_declaration: bool = False,
        item_name: str = DEFAULT_ITEM_NAME,
    ) -> None:
        self.emit_types = emit_types
        self.xml_declaration = xml_declaration
        self.item_name = item_name
        self._out: io.StringIO = io.StringIO()
        self._scopes: list[dict[str, str]] = [{"xml": XML_URI}]
        self._gen_counter = 0
        self._self_closed: set[int] = set()

    # ------------------------------------------------------------------

    def run(self, node: Node) -> str:
        """Serialize ``node`` and return the XML text."""
        self._out = io.StringIO()
        self._scopes = [{"xml": XML_URI}]
        self._gen_counter = 0
        self._self_closed = set()
        if self.xml_declaration:
            self._out.write('<?xml version="1.0" encoding="UTF-8"?>')
        walk(node, self)
        return self._out.getvalue()

    def run_bytes(self, node: Node) -> bytes:
        """Serialize to UTF-8 bytes (what the transport layer carries)."""
        return self.run(node).encode("utf-8")

    # ------------------------------------------------------------------
    # namespace machinery

    def _scope(self) -> dict[str, str]:
        return self._scopes[-1]

    def _merged(self, pending: list[tuple[str, str]]) -> dict[str, str]:
        scope = dict(self._scope())
        for prefix, uri in pending:
            scope[prefix] = uri
        return scope

    def _fresh_prefix(self, bound: dict[str, str]) -> str:
        while True:
            self._gen_counter += 1
            prefix = f"ns{self._gen_counter}"
            if prefix not in bound:
                return prefix

    def _attr_prefix_for(
        self, uri: str, pending: list[tuple[str, str]], hint: str = ""
    ) -> str:
        """Find or declare a *non-empty* prefix binding for an attribute."""
        bound = self._merged(pending)
        candidates = [p for p, u in bound.items() if u == uri and p]
        if hint and hint in candidates:
            return hint
        if candidates:
            return candidates[0]
        if hint and bound.get(hint, uri) == uri:
            prefix = hint
        else:
            prefix = self._fresh_prefix(bound)
        pending.append((prefix, uri))
        return prefix

    def _well_known_prefix(self, uri: str, pending: list[tuple[str, str]]) -> str:
        hint = next((p for p, u in WELL_KNOWN_PREFIXES.items() if u == uri), "")
        return self._attr_prefix_for(uri, pending, hint)

    def _element_prefix(self, name: QName, pending: list[tuple[str, str]]) -> str:
        """Prefix for an element name (default namespace allowed)."""
        scope = self._merged(pending)
        if scope.get("", None) == name.uri:
            return ""
        if name.prefix and scope.get(name.prefix) == name.uri:
            return name.prefix
        for prefix, uri in scope.items():
            if uri == name.uri and prefix:
                return prefix
        hint = name.prefix
        if hint and bound_free(scope, hint, name.uri):
            pending.append((hint, name.uri))
            return hint
        prefix = self._fresh_prefix(scope)
        pending.append((prefix, name.uri))
        return prefix

    # ------------------------------------------------------------------
    # tag emission

    def _open_tag(
        self, node: ElementNode, extra_attrs: list[tuple[str, str]] | None = None
    ) -> str:
        """Emit ``<tag xmlns... attrs...`` (no closing ``>``), push scope.

        ``extra_attrs`` are pre-rendered (qualified-name, value) pairs used
        for type annotations; their prefixes must have been resolved against
        the same pending list, which callers achieve via
        :meth:`_open_tag_typed`.
        """
        pending: list[tuple[str, str]] = [(ns.prefix, ns.uri) for ns in node.namespaces]
        self._check_explicit_decls(node, pending)
        return self._emit_tag(node, pending, extra_attrs or [])

    def _open_tag_typed(self, node: ElementNode) -> str:
        """Open tag for leaf/array elements, adding xsi/bx annotations."""
        pending: list[tuple[str, str]] = [(ns.prefix, ns.uri) for ns in node.namespaces]
        self._check_explicit_decls(node, pending)
        extra: list[tuple[str, str]] = []
        if self.emit_types:
            xsi = self._well_known_prefix(XSI_URI, pending)
            xsd = self._well_known_prefix(XSD_URI, pending)
            if isinstance(node, ArrayElement):
                bx = self._well_known_prefix(BX_URI, pending)
                extra.append((f"{xsi}:type", f"{bx}:Array"))
                extra.append((f"{bx}:itemType", f"{xsd}:{node.atype.xsd_name}"))
            else:
                extra.append((f"{xsi}:type", f"{xsd}:{node.atype.xsd_name}"))
        return self._emit_tag(node, pending, extra)

    def _emit_tag(
        self,
        node: ElementNode,
        pending: list[tuple[str, str]],
        extra_attrs: list[tuple[str, str]],
    ) -> str:
        if node.name.uri:
            prefix = self._element_prefix(node.name, pending)
            tag = f"{prefix}:{node.name.local}" if prefix else node.name.local
        else:
            if self._merged(pending).get("", ""):
                pending.append(("", ""))  # cancel inherited default namespace
            tag = node.name.local

        attr_parts = [self._render_attribute(a, pending) for a in node.attributes]
        attr_parts.extend(
            f'{name}="{escape_attribute(value)}"' for name, value in extra_attrs
        )

        self._scopes.append(self._merged(pending))
        out = self._out
        out.write("<")
        out.write(tag)
        for prefix, uri in pending:
            if prefix:
                out.write(f' xmlns:{prefix}="{escape_attribute(uri)}"')
            else:
                out.write(f' xmlns="{escape_attribute(uri)}"')
        for part in attr_parts:
            out.write(" ")
            out.write(part)
        return tag

    def _check_explicit_decls(self, node: ElementNode, pending: list[tuple[str, str]]) -> None:
        seen: set[str] = set()
        for prefix, _uri in pending:
            if prefix in seen:
                raise XMLSerializeError(
                    f"element {node.name.clark()} declares prefix {prefix!r} twice"
                )
            seen.add(prefix)

    def _render_attribute(self, attr: AttributeNode, pending: list[tuple[str, str]]) -> str:
        value = format_lexical(attr.atype, attr.value)
        if attr.name.uri:
            prefix = self._attr_prefix_for(attr.name.uri, pending, attr.name.prefix)
            name = f"{prefix}:{attr.name.local}"
        else:
            name = attr.name.local
        return f'{name}="{escape_attribute(value)}"'

    def _close_tag(self, node: ElementNode) -> str:
        """Recompute the tag name at close time from the element's own scope.

        The scope pushed by ``_emit_tag`` is still on top of the stack and
        the resolution algorithm is deterministic, so this reproduces the
        exact tag the open used.
        """
        scope = self._scope()
        if not node.name.uri:
            return node.name.local
        if scope.get("", None) == node.name.uri:
            return node.name.local
        if node.name.prefix and scope.get(node.name.prefix) == node.name.uri:
            return f"{node.name.prefix}:{node.name.local}"
        for prefix, uri in scope.items():
            if uri == node.name.uri and prefix:
                return f"{prefix}:{node.name.local}"
        raise XMLSerializeError(  # pragma: no cover - open tag declared it
            f"no prefix in scope for {node.name.clark()} at close"
        )

    # ------------------------------------------------------------------
    # visitor hooks

    def enter_element(self, node: ElementNode) -> None:
        self._open_tag(node)
        if node.children:
            self._out.write(">")
        else:
            self._out.write("/>")
            self._scopes.pop()
            self._self_closed.add(id(node))

    def leave_element(self, node: ElementNode) -> None:
        if id(node) in self._self_closed:
            self._self_closed.discard(id(node))
            return
        self._out.write(f"</{self._close_tag(node)}>")
        self._scopes.pop()

    def visit_leaf(self, node: LeafElement) -> None:
        tag = self._open_tag_typed(node)
        self._out.write(">")
        self._out.write(escape_text(format_lexical(node.atype, node.value)))
        self._out.write(f"</{tag}>")
        self._scopes.pop()

    def visit_array(self, node: ArrayElement) -> None:
        tag = self._open_tag_typed(node)
        out = self._out
        items = self._array_item_strings(node)
        if not items:
            out.write("/>")
            self._scopes.pop()
            return
        out.write(">")
        item = node.item_name or self.item_name
        open_item = f"<{item}>"
        close_item = f"</{item}>"
        # single join: this is the hot loop behind Table 1 and Figures 4-6
        out.write("".join(f"{open_item}{t}{close_item}" for t in items))
        out.write(f"</{tag}>")
        self._scopes.pop()

    def visit_text(self, node: TextNode) -> None:
        self._out.write(escape_text(node.text))

    def visit_comment(self, node: CommentNode) -> None:
        self._out.write(f"<!--{node.text}-->")

    def visit_pi(self, node: PINode) -> None:
        if node.data:
            self._out.write(f"<?{node.target} {node.data}?>")
        else:
            self._out.write(f"<?{node.target}?>")

    # ------------------------------------------------------------------

    def _array_item_strings(self, node: ArrayElement) -> list[str]:
        """Lexical forms of every array item, bulk-converted."""
        values = node.values
        kind = values.dtype.kind
        if kind in "iu":
            return [str(v) for v in values.tolist()]
        if kind == "f":
            # tolist() yields Python floats; repr is the shortest round-trip
            # form.  This per-element conversion is the measured XML cost.
            return [_float_lexical(v) for v in values.tolist()]
        if kind == "b":
            return ["true" if v else "false" for v in values.tolist()]
        raise XMLSerializeError(f"cannot serialize array dtype {values.dtype}")


def bound_free(scope: dict[str, str], prefix: str, uri: str) -> bool:
    """True when ``prefix`` is unbound or already bound to ``uri``."""
    return scope.get(prefix, uri) == uri
