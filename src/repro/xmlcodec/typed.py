"""The xsi:type convention linking textual XML to typed bXDM nodes.

§4.2 of the paper: *"if the schema of the document is unavailable, the XML
serialization of bXDM should contain the type information explicitly, as
required by the SOAP encoding rule, otherwise we are not able to create the
typed LeafElement in the bXDM model."*  This module pins down exactly what
"explicitly" means for this implementation:

* a **LeafElement** carries ``xsi:type="xsd:<name>"`` and its value in
  lexical form as text content;
* an **ArrayElement** carries ``xsi:type="bx:Array"`` plus
  ``bx:itemType="xsd:<name>"`` and serializes each value as one child item
  element (default name ``item``; the original item name survives a parse in
  the element's ``item_name`` hint so re-serialization is faithful);
* everything else is plain XML.

``bx`` is this project's small extension namespace (:data:`BX_URI`); it plays
the role a published schema would.
"""

from __future__ import annotations

from repro.xdm.qname import QName, XSD_URI, XSI_URI

#: Namespace of the bXDM extension attributes (array annotations).
BX_URI = "urn:repro:bxdm"

#: Attribute marking the xsi type of a typed element.
XSI_TYPE = QName("type", XSI_URI, "xsi")

#: xsi:type value used for array elements.
ARRAY_TYPE = QName("Array", BX_URI, "bx")

#: Attribute carrying the item type of an array element.
BX_ITEM_TYPE = QName("itemType", BX_URI, "bx")

#: Default element name for array items in textual XML.
DEFAULT_ITEM_NAME = "item"

#: Prefixes the serializer auto-declares when it needs them.
WELL_KNOWN_PREFIXES = {
    "xsd": XSD_URI,
    "xsi": XSI_URI,
    "bx": BX_URI,
}


def split_qname_text(value: str) -> tuple[str, str]:
    """Split a QName-in-content lexical value (``prefix:local``) in two.

    Returns ``(prefix, local)`` with an empty prefix for unprefixed names.
    """
    prefix, sep, local = value.partition(":")
    if not sep:
        return "", value
    return prefix, local
