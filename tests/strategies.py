"""Shared hypothesis strategies generating random bXDM trees.

Used by the XML, BXSA and transcodability property tests.  The generated
trees stay inside the well-formed envelope both codecs promise to round-trip:
no control characters, no adjacent text siblings, comments/PIs within the
XML grammar's content rules.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st
import hypothesis.extra.numpy as hnp

from repro.xdm import (
    ArrayElement,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    PINode,
    QName,
    TextNode,
    atomic_type_for_xsd,
)
from repro.xdm.nodes import AttributeNode, NamespaceNode

names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_\-]{0,7}", fullmatch=True)
prefixes = st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,3}", fullmatch=True).filter(
    lambda p: p.lower() not in ("xml", "xmlns")
)
uris = st.sampled_from(["urn:a", "urn:b", "urn:test/ns", "http://example.org/x"])

# Text without control chars or surrogates; XML cannot carry Cc/Cs.
safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1,
    max_size=40,
)

comment_text = safe_text.filter(lambda s: "--" not in s and not s.endswith("-"))
pi_data = safe_text.filter(lambda s: "?>" not in s)

_NUMERIC_XSD = [
    "byte",
    "short",
    "int",
    "long",
    "unsignedByte",
    "unsignedShort",
    "unsignedInt",
    "unsignedLong",
    "float",
    "double",
]


@st.composite
def qnames(draw) -> QName:
    local = draw(names)
    if draw(st.booleans()):
        return QName(local, draw(uris), draw(prefixes))
    return QName(local)


@st.composite
def leaf_values(draw):
    xsd = draw(st.sampled_from(_NUMERIC_XSD + ["boolean", "string"]))
    atype = atomic_type_for_xsd(xsd)
    if xsd == "string":
        return atype, draw(safe_text)
    if xsd == "boolean":
        return atype, draw(st.booleans())
    if atype.dtype.kind == "f":
        return atype, draw(st.floats(allow_nan=False, width=atype.dtype.itemsize * 8))
    info = np.iinfo(atype.dtype)
    return atype, draw(st.integers(int(info.min), int(info.max)))


@st.composite
def attributes(draw) -> list[AttributeNode]:
    count = draw(st.integers(0, 3))
    attrs: list[AttributeNode] = []
    seen: set = set()
    for _ in range(count):
        name = draw(qnames())
        if name in seen:
            continue
        seen.add(name)
        attrs.append(AttributeNode(name, draw(safe_text)))
    return attrs


@st.composite
def leaf_elements(draw) -> LeafElement:
    atype, value = draw(leaf_values())
    return LeafElement(draw(qnames()), value, atype, attributes=draw(attributes()))


@st.composite
def array_elements(draw) -> ArrayElement:
    xsd = draw(st.sampled_from(_NUMERIC_XSD))
    atype = atomic_type_for_xsd(xsd)
    values = draw(
        hnp.arrays(
            dtype=atype.dtype,
            shape=st.integers(0, 12),
            elements={"allow_nan": False} if atype.dtype.kind == "f" else None,
        )
    )
    return ArrayElement(
        draw(qnames()), values, atype, attributes=draw(attributes())
    )


def _no_adjacent_text(children: list) -> list:
    out: list = []
    for child in children:
        if isinstance(child, TextNode) and out and isinstance(out[-1], TextNode):
            continue
        out.append(child)
    return out


@st.composite
def elements(draw, max_depth: int = 3) -> ElementNode:
    kids_strategy = st.one_of(
        leaf_elements(),
        array_elements(),
        safe_text.map(TextNode),
        comment_text.map(CommentNode),
        st.tuples(names.filter(lambda n: n.lower() != "xml"), pi_data).map(
            lambda t: PINode(*t)
        ),
    )
    if max_depth > 0:
        kids_strategy = st.one_of(kids_strategy, elements(max_depth=max_depth - 1))
    children = _no_adjacent_text(draw(st.lists(kids_strategy, max_size=4)))
    node = ElementNode(draw(qnames()), attributes=draw(attributes()), children=children)
    # occasionally add an explicit namespace declaration
    if draw(st.booleans()):
        node.namespaces.append(NamespaceNode(draw(prefixes), draw(uris)))
    return node


@st.composite
def documents(draw) -> DocumentNode:
    prolog = draw(st.lists(comment_text.map(CommentNode), max_size=2))
    return DocumentNode(prolog + [draw(elements())])
