"""Tests for the event-driven serving core (`repro.transport.aio`).

The selector loop owns accept, framing and writes; the worker pool owns
execution.  These tests pin the seams: keep-alive sequencing, the admin
surface, shedding (pool-full and connection-cap), drain, the one-shot
lifecycle, and the incremental parser rejecting exactly what the
blocking parser rejects.
"""

import socket
import threading
import time

import pytest

from repro.obs import render_prometheus
from repro.serve.pool import WorkerPool
from repro.transport import MemoryNetwork, TcpListener, connect_tcp
from repro.transport.aio import AsyncHttpServer, drive_connections
from repro.transport.base import TransportError
from repro.transport.http import HttpClient, HttpRequest, HttpResponse


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


def _echo_handler(request: HttpRequest) -> HttpResponse:
    if request.target == "/boom":
        raise RuntimeError("handler exploded")
    return HttpResponse(200, body=b"echo:" + request.body)


def _http_client(listener: TcpListener) -> HttpClient:
    host, port = listener.address
    return HttpClient(lambda: connect_tcp(host, port))


class TestInlineServing:
    def setup_method(self):
        self.listener = TcpListener(backlog=64)
        self.server = AsyncHttpServer(self.listener, _echo_handler).start()

    def teardown_method(self):
        self.server.stop()

    def test_keep_alive_request_sequence(self):
        client = _http_client(self.listener)
        try:
            for i in range(5):
                response = client.post("/x", f"ping-{i}".encode())
                assert response.status == 200
                assert response.body == f"echo:ping-{i}".encode()
        finally:
            client.close()
        # all five rode one connection
        assert self.server.metrics.counter("http_connections_total").snapshot() == 1

    def test_admin_surface_answers_inline(self):
        client = _http_client(self.listener)
        try:
            assert client.post("/x", b"warm").status == 200
            metrics = client.get("/metrics")
            assert metrics.status == 200
            assert b"http_requests_total" in metrics.body
            health = client.get("/healthz")
            assert health.status == 200
            assert b'"status": "ok"' in health.body
            varz = client.get("/varz")
            assert varz.status == 200
        finally:
            client.close()

    def test_handler_exception_becomes_500_and_connection_survives(self):
        client = _http_client(self.listener)
        try:
            response = client.get("/boom")
            assert response.status == 500
            assert response.body == b"internal server error"
            assert client.post("/x", b"after").status == 200  # same connection
        finally:
            client.close()
        assert len(self.server.recent_errors) == 1

    def test_malformed_head_gets_400_and_close(self):
        sock = socket.create_connection(self.listener.address, timeout=5)
        try:
            sock.sendall(b"GARBAGE\r\n\r\n")
            data = sock.recv(65536)
            assert data.startswith(b"HTTP/1.1 400")
            assert b"Connection: close" in data
            assert sock.recv(65536) == b""  # server closed after flushing
        finally:
            sock.close()

    def test_conflicting_content_length_gets_400(self):
        sock = socket.create_connection(self.listener.address, timeout=5)
        try:
            sock.sendall(
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\nhello"
            )
            assert sock.recv(65536).startswith(b"HTTP/1.1 400")
        finally:
            sock.close()

    def test_pipelined_requests_answered_in_order(self):
        sock = socket.create_connection(self.listener.address, timeout=5)
        try:
            burst = b"".join(
                HttpRequest("POST", "/x", body=f"p{i}".encode()).to_bytes()
                for i in range(3)
            )
            sock.sendall(burst)
            data = b""
            deadline = time.monotonic() + 5
            while data.count(b"HTTP/1.1 200") < 3 and time.monotonic() < deadline:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
            bodies = [data.index(f"echo:p{i}".encode()) for i in range(3)]
            assert bodies == sorted(bodies)
        finally:
            sock.close()


class TestLifecycle:
    def test_restart_raises(self):
        listener = TcpListener()
        server = AsyncHttpServer(listener, _echo_handler).start()
        server.stop()
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            server.start()

    def test_stop_before_start_then_start_raises(self):
        server = AsyncHttpServer(TcpListener(), _echo_handler)
        server.stop()
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            server.start()

    def test_memory_listener_rejected_with_clear_error(self):
        net = MemoryNetwork()
        with pytest.raises(TransportError, match="socket-backed"):
            AsyncHttpServer(net.listen("web"), _echo_handler)

    def test_pool_requires_pool_handler(self):
        with WorkerPool(workers=1, queue_depth=1) as pool:
            with pytest.raises(ValueError, match="pool_handler"):
                AsyncHttpServer(TcpListener(), _echo_handler, pool=pool)

    def test_stop_closes_every_connection(self):
        listener = TcpListener()
        server = AsyncHttpServer(listener, _echo_handler).start()
        socks = [socket.create_connection(listener.address, timeout=5) for _ in range(4)]
        try:
            wait_until(lambda: server.open_connections == 4)
            server.stop()
            assert server.open_connections == 0
            for sock in socks:
                sock.settimeout(5)
                assert sock.recv(16) == b""  # peer closed
        finally:
            for sock in socks:
                sock.close()


class TestConnectionCap:
    def test_cap_rejects_with_503_and_close(self):
        listener = TcpListener()
        server = AsyncHttpServer(listener, _echo_handler, max_connections=1).start()
        keeper = _http_client(listener)
        try:
            assert keeper.get("/x").status == 200  # the one slot is held
            extra = _http_client(listener)
            try:
                response = extra.get("/x")
                assert response.status == 503
                assert response.headers.get("Retry-After") is not None
                assert response.headers.get("Connection") == "close"
            finally:
                extra.close()
            samples = render_prometheus(server.metrics)
            assert "http_connections_rejected_total 1" in samples
        finally:
            keeper.close()
            server.stop()

    def test_slot_frees_when_connection_closes(self):
        """The cap-at-boundary race: a slot released by a closing
        connection must become usable, never spuriously rejected."""
        listener = TcpListener()
        server = AsyncHttpServer(listener, _echo_handler, max_connections=1).start()
        try:
            for _ in range(5):
                client = _http_client(listener)
                try:
                    assert client.get("/x").status == 200
                finally:
                    client.close()
                wait_until(lambda: server.open_connections == 0)
            assert (
                server.metrics.counter("http_connections_rejected_total").snapshot()
                == 0
            )
        finally:
            server.stop()


class TestPooledServing:
    def test_pooled_roundtrip_and_worker_state(self):
        seen_states = []

        def pool_handler(request, state, _enqueued_at):
            seen_states.append(state)
            return HttpResponse(200, body=b"pooled:" + request.body)

        listener = TcpListener()
        with WorkerPool(workers=1, queue_depth=8, worker_state_factory=dict) as pool:
            server = AsyncHttpServer(
                listener, _echo_handler, pool=pool, pool_handler=pool_handler
            ).start()
            client = _http_client(listener)
            try:
                for i in range(3):
                    response = client.post("/work", f"r{i}".encode())
                    assert response.status == 200
                    assert response.body == f"pooled:r{i}".encode()
            finally:
                client.close()
                server.stop()
        # one worker, one private state object, reused across requests
        assert len(seen_states) == 3
        assert all(state is seen_states[0] for state in seen_states)

    def test_admin_stays_inline_when_pool_is_wedged(self):
        release = threading.Event()

        def wedged(request, _state, _enqueued_at):
            release.wait(10)
            return HttpResponse(200, body=b"late")

        listener = TcpListener()
        pool = WorkerPool(workers=1, queue_depth=1)
        pool.start()
        server = AsyncHttpServer(
            listener, _echo_handler, pool=pool, pool_handler=wedged
        ).start()
        blocked = _http_client(listener)
        thread = threading.Thread(
            target=lambda: blocked.post("/work", b"x"), daemon=True
        )
        thread.start()
        try:
            wait_until(lambda: pool.busy_workers == 1)
            admin = _http_client(listener)
            try:
                assert admin.get("/healthz").status == 200  # inline, no pool
            finally:
                admin.close()
        finally:
            release.set()
            thread.join(5)
            blocked.close()
            server.stop()
            pool.stop()

    def test_pool_full_sheds_503_with_retry_after_and_on_shed(self):
        release = threading.Event()
        shed_targets = []

        def wedged(request, _state, _enqueued_at):
            release.wait(10)
            return HttpResponse(200, body=b"late")

        listener = TcpListener()
        pool = WorkerPool(workers=1, queue_depth=1, retry_after=0.25)
        pool.start()
        server = AsyncHttpServer(
            listener,
            _echo_handler,
            pool=pool,
            pool_handler=wedged,
            on_shed=lambda request: shed_targets.append(request.target),
        ).start()
        clients = [_http_client(listener) for _ in range(2)]
        threads = []
        try:
            # fill the pool deterministically: first request wedges the
            # worker, and only then is the second queued — a concurrent
            # pair could race the worker's dequeue and shed early
            first = threading.Thread(
                target=lambda: clients[0].post("/work", b"x"), daemon=True
            )
            threads.append(first)
            first.start()
            wait_until(lambda: pool.busy_workers == 1)
            second = threading.Thread(
                target=lambda: clients[1].post("/work", b"x"), daemon=True
            )
            threads.append(second)
            second.start()
            wait_until(
                lambda: pool.metrics.gauge("serve_queue_depth").snapshot() == 1
            )
            extra = _http_client(listener)
            try:
                response = extra.post("/work", b"overflow")
                assert response.status == 503
                assert response.headers.get("Retry-After") == "0.25"
            finally:
                extra.close()
            assert shed_targets == ["/work"]
        finally:
            release.set()
            for t in threads:
                t.join(5)
            for c in clients:
                c.close()
            server.stop()
            pool.stop()

    def test_inline_router_answers_without_the_pool(self):
        def pool_handler(request, _state, _enqueued_at):
            return HttpResponse(200, body=b"pooled")

        def router(request):
            if request.target != "/work":
                return HttpResponse(404, body=b"no such endpoint")
            return None

        listener = TcpListener()
        with WorkerPool(workers=1, queue_depth=4) as pool:
            server = AsyncHttpServer(
                listener,
                _echo_handler,
                pool=pool,
                pool_handler=pool_handler,
                inline_router=router,
            ).start()
            client = _http_client(listener)
            try:
                assert client.get("/nope").status == 404
                assert client.post("/work", b"x").body == b"pooled"
            finally:
                client.close()
                server.stop()

    def test_stop_drains_in_flight_pooled_requests(self):
        entered = threading.Event()

        def slow(request, _state, _enqueued_at):
            entered.set()
            time.sleep(0.2)
            return HttpResponse(200, body=b"drained")

        listener = TcpListener()
        pool = WorkerPool(workers=1, queue_depth=4)
        pool.start()
        server = AsyncHttpServer(
            listener, _echo_handler, pool=pool, pool_handler=slow
        ).start()
        client = _http_client(listener)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(client.post("/work", b"x").status),
            daemon=True,
        )
        thread.start()
        try:
            assert entered.wait(5)
            server.stop(drain_timeout=5)
            thread.join(5)
            assert results == [200]
        finally:
            client.close()
            pool.stop()


class TestConnectionDriver:
    def test_many_connections_exact_accounting(self):
        listener = TcpListener(backlog=128)
        server = AsyncHttpServer(
            listener, _echo_handler, max_connections=128
        ).start()
        try:
            request_bytes = HttpRequest("POST", "/x", body=b"drive").to_bytes()
            result = drive_connections(
                listener.address,
                request_bytes,
                connections=64,
                requests_per_connection=3,
            )
            assert result.established == 64
            assert result.offered == 192
            assert result.completed == 192
            assert result.shed == 0 and result.failed == 0
            assert result.goodput_rps > 0
            assert len(result.latencies) == 192
        finally:
            server.stop()

    def test_cap_overflow_counts_as_failed_connections(self):
        """Connections the server rejects at its cap fail their whole
        quota (the 503 arrives on a closing connection)."""
        listener = TcpListener(backlog=64)
        server = AsyncHttpServer(listener, _echo_handler, max_connections=8).start()
        try:
            request_bytes = HttpRequest("POST", "/x", body=b"o").to_bytes()
            result = drive_connections(
                listener.address,
                request_bytes,
                connections=16,
                requests_per_connection=2,
            )
            assert result.offered == 32
            assert result.completed + result.shed + result.failed == 32
            assert result.completed >= 16  # the 8 accepted conns all finish
        finally:
            server.stop()

    def test_paced_rate_spreads_requests(self):
        listener = TcpListener(backlog=64)
        server = AsyncHttpServer(listener, _echo_handler, max_connections=64).start()
        try:
            request_bytes = HttpRequest("POST", "/x", body=b"r").to_bytes()
            result = drive_connections(
                listener.address,
                request_bytes,
                connections=8,
                requests_per_connection=2,
                rate=200.0,
            )
            assert result.completed == 16
            # 16 requests at 200/s arrive over >= ~75ms by schedule
            assert result.duration_seconds >= 0.05
        finally:
            server.stop()


class TestChunkedTransfer:
    """Chunked Transfer-Encoding through the event-driven core."""

    def setup_method(self):
        self.listener = TcpListener(backlog=64)
        self.server = AsyncHttpServer(self.listener, _echo_handler).start()

    def teardown_method(self):
        self.server.stop()

    def _recv_response(self, sock) -> bytes:
        data = b""
        while b"\r\n\r\n" not in data:
            data += sock.recv(65536)
        return data

    def test_chunked_request_with_trailers(self):
        sock = socket.create_connection(self.listener.address, timeout=5)
        try:
            sock.sendall(
                b"POST /x HTTP/1.1\r\nHost: a\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"6\r\nhello-\r\n5\r\nworld\r\n0\r\nX-Sum: 42\r\n\r\n"
            )
            data = self._recv_response(sock)
            assert data.startswith(b"HTTP/1.1 200")
            assert b"echo:hello-world" in data
        finally:
            sock.close()

    def test_chunked_then_pipelined_plain_request(self):
        """Residue after the terminal chunk is the next request; the
        selector loop must keep both answers in order."""
        sock = socket.create_connection(self.listener.address, timeout=5)
        try:
            sock.sendall(
                b"POST /a HTTP/1.1\r\nHost: a\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"3\r\none\r\n0\r\n\r\n"
                b"POST /b HTTP/1.1\r\nHost: a\r\nContent-Length: 3\r\n\r\ntwo"
            )
            data = b""
            while data.count(b"HTTP/1.1 200") < 2 or not data.endswith(b"echo:two"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
            assert data.index(b"echo:one") < data.index(b"echo:two")
        finally:
            sock.close()

    def test_streamed_response_handler(self):
        def streaming_handler(request):
            response = HttpResponse(200)
            response.stream = (b"piece-%d," % i for i in range(8))
            return response

        listener = TcpListener(backlog=16)
        server = AsyncHttpServer(listener, streaming_handler).start()
        client = _http_client(listener)
        try:
            response = client.get("/s", stream_response=True)
            assert response.status == 200
            assert (response.headers.get("Transfer-Encoding") or "").lower() == "chunked"
            body = b"".join(response.stream)
            assert body == b"".join(b"piece-%d," % i for i in range(8))
            # keep-alive survives a fully-consumed streamed response
            assert client.get("/t", stream_response=False).status == 200
        finally:
            client.close()
            server.stop()

    def test_unsupported_transfer_encoding_gets_501_and_close(self):
        sock = socket.create_connection(self.listener.address, timeout=5)
        try:
            sock.sendall(
                b"POST /x HTTP/1.1\r\nHost: a\r\nTransfer-Encoding: deflate\r\n\r\n"
            )
            data = self._recv_response(sock)
            assert data.startswith(b"HTTP/1.1 501")
            assert b"Connection: close" in data
            assert sock.recv(65536) == b""  # closed after flushing
        finally:
            sock.close()

    def test_te_with_content_length_gets_400(self):
        sock = socket.create_connection(self.listener.address, timeout=5)
        try:
            sock.sendall(
                b"POST /x HTTP/1.1\r\nHost: a\r\n"
                b"Transfer-Encoding: chunked\r\nContent-Length: 3\r\n\r\nabc"
            )
            assert self._recv_response(sock).startswith(b"HTTP/1.1 400")
        finally:
            sock.close()
