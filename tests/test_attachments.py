"""Tests for the SOAP-with-Attachments packaging and its extension
experiment."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SoapEnvelope, XMLEncoding
from repro.harness.extension_attachments import run_attachment
from repro.netsim import LAN, WAN
from repro.transport.attachments import (
    Attachment,
    AttachmentError,
    SwaPackage,
)
from repro.workloads.lead import lead_dataset
from repro.xdm import element, leaf


def sample_package():
    payload = XMLEncoding().encode(
        SoapEnvelope.wrap(element("Op", leaf("ref", "cid:data", "string"))).to_document()
    )
    return SwaPackage(
        payload,
        "text/xml",
        [
            Attachment("data", b"\x00\x01\x02\xff" * 100),
            Attachment("meta", b"{}", "application/json"),
        ],
    )


class TestPackageCodec:
    def test_roundtrip(self):
        package = sample_package()
        back = SwaPackage.from_bytes(package.to_bytes())
        assert back.envelope_payload == package.envelope_payload
        assert back.envelope_content_type == "text/xml"
        assert len(back.attachments) == 2
        assert back.attachment("data").data == package.attachments[0].data
        assert back.attachment("meta").content_type == "application/json"

    def test_cid_lookup(self):
        package = sample_package()
        assert package.attachment("cid:data").content_id == "data"
        with pytest.raises(AttachmentError):
            package.attachment("cid:absent")

    def test_binary_payloads_travel_raw(self):
        """CRLF and boundary-looking bytes inside parts must survive."""
        tricky = b"\r\n--repro-swa-part\r\nContent-ID: <fake>\r\n\r\n" * 3
        package = SwaPackage(b"<e/>", "text/xml", [Attachment("t", tricky)])
        back = SwaPackage.from_bytes(package.to_bytes())
        assert back.attachment("t").data == tricky

    def test_empty_attachment_list(self):
        package = SwaPackage(b"<e/>", "text/xml")
        back = SwaPackage.from_bytes(package.to_bytes())
        assert back.attachments == []

    def test_first_part_must_be_envelope(self):
        blob = sample_package().to_bytes()
        # swap the envelope's content id
        corrupted = blob.replace(b"<soap-envelope>", b"<not-the-envelope>", 1)
        with pytest.raises(AttachmentError, match="first part"):
            SwaPackage.from_bytes(corrupted)

    def test_illegal_content_id_rejected(self):
        package = SwaPackage(b"<e/>", "text/xml", [Attachment("a<b", b"x")])
        with pytest.raises(AttachmentError):
            package.to_bytes()

    @pytest.mark.parametrize(
        "mutilate",
        [
            lambda blob: blob[:10],  # truncated boundary
            lambda blob: blob[:-10],  # missing terminator
            lambda blob: b"junk" + blob,  # garbage prefix
            lambda blob: blob.replace(b"Content-Length", b"Content-Wrong", 1),
        ],
    )
    def test_malformed_packages_rejected(self, mutilate):
        blob = sample_package().to_bytes()
        with pytest.raises(AttachmentError):
            SwaPackage.from_bytes(mutilate(blob))

    @given(st.binary(max_size=300))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_fuzz_never_crashes(self, blob):
        try:
            SwaPackage.from_bytes(blob)
        except AttachmentError:
            pass

    def test_size_overhead_is_small(self):
        """Packaging overhead is headers-only — no payload re-encoding."""
        data = np.arange(10_000, dtype="f8").tobytes()
        package = SwaPackage(b"<e/>", "text/xml", [Attachment("d", data)])
        assert len(package.to_bytes()) < len(data) + 512


class TestAttachmentScheme:
    @pytest.mark.parametrize("base64_mode", [False, True])
    @pytest.mark.parametrize("profile", [LAN, WAN])
    def test_runner_verifies_correctly(self, base64_mode, profile):
        result = run_attachment(
            lead_dataset(500), profile, base64_mode=base64_mode, repeats=1
        )
        assert result.response_time > 0
        assert result.scheme.endswith("base64" if base64_mode else "raw")

    def test_base64_inflates_wire(self):
        dataset = lead_dataset(2000)
        raw = run_attachment(dataset, LAN, repeats=1)
        b64 = run_attachment(dataset, LAN, base64_mode=True, repeats=1)
        assert b64.request_wire_bytes > raw.request_wire_bytes * 1.25

    def test_raw_wire_near_native(self):
        dataset = lead_dataset(2000)
        result = run_attachment(dataset, LAN, repeats=1)
        assert result.request_wire_bytes < dataset.native_bytes * 1.1 + 1024
