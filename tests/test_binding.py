"""Tests for the XML databinding layer (the paper's Figure 3 box)."""

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import pytest

from repro.binding import Array, BindingError, from_element, to_element
from repro.bxsa import decode, encode
from repro.xdm import LeafElement, element, leaf
from repro.xmlcodec import parse_fragment, serialize


@dataclass
class Channel:
    label: str
    gain: float


@dataclass
class Reading:
    station: int
    tick: int
    ok: bool
    note: Optional[str]
    samples: Array["f4"]
    channels: List[Channel] = field(default_factory=list)


def sample_reading() -> Reading:
    return Reading(
        station=7,
        tick=99,
        ok=True,
        note="calibrated",
        samples=np.linspace(0, 1, 9, dtype="f4"),
        channels=[Channel("temp", 1.5), Channel("rh", 0.9)],
    )


class TestToElement:
    def test_structure(self):
        node = to_element(sample_reading())
        assert node.name.local == "Reading"
        names = [c.name.local for c in node.elements()]
        assert names == ["station", "tick", "ok", "note", "samples", "channels", "channels"]

    def test_field_types(self):
        node = to_element(sample_reading())
        station = next(c for c in node.elements() if c.name.local == "station")
        assert isinstance(station, LeafElement)
        assert station.atype.xsd_name == "long"
        samples = next(c for c in node.elements() if c.name.local == "samples")
        assert samples.atype.xsd_name == "float"

    def test_optional_none_omitted(self):
        reading = sample_reading()
        reading.note = None
        node = to_element(reading)
        assert all(c.name.local != "note" for c in node.elements())

    def test_custom_element_name(self):
        assert to_element(sample_reading(), "r").name.local == "r"

    def test_non_dataclass_rejected(self):
        with pytest.raises(BindingError):
            to_element(object())

    def test_none_required_rejected(self):
        reading = sample_reading()
        reading.tick = None
        with pytest.raises(BindingError, match="tick"):
            to_element(reading)

    def test_wrong_type_rejected(self):
        reading = sample_reading()
        reading.station = "seven"
        with pytest.raises(BindingError, match="station"):
            to_element(reading)

    def test_bool_not_accepted_as_int(self):
        reading = sample_reading()
        reading.station = True
        with pytest.raises(BindingError, match="station"):
            to_element(reading)

    def test_int_promoted_to_float_field(self):
        @dataclass
        class P:
            x: float

        node = to_element(P(3))
        assert next(node.elements()).value == 3.0

    def test_2d_array_rejected(self):
        reading = sample_reading()
        reading.samples = np.zeros((2, 2), dtype="f4")
        with pytest.raises(BindingError, match="1-D"):
            to_element(reading)


class TestFromElement:
    def test_roundtrip_in_memory(self):
        original = sample_reading()
        back = from_element(Reading, to_element(original))
        assert back.station == original.station
        assert back.note == "calibrated"
        assert back.channels == original.channels
        np.testing.assert_array_equal(back.samples, original.samples)
        assert back.samples.dtype == np.dtype("f4")

    def test_roundtrip_through_bxsa(self):
        original = sample_reading()
        rebuilt = decode(encode(to_element(original)))
        back = from_element(Reading, rebuilt)
        assert back.station == original.station
        assert back.channels == original.channels
        np.testing.assert_array_equal(back.samples, original.samples)

    def test_roundtrip_through_xml(self):
        original = sample_reading()
        rebuilt = parse_fragment(serialize(to_element(original)))
        back = from_element(Reading, rebuilt)
        assert back.channels[1].label == "rh"
        np.testing.assert_array_equal(back.samples, original.samples)

    def test_missing_required_field(self):
        node = to_element(sample_reading())
        node.children = [c for c in node.children if c.name.local != "tick"]
        with pytest.raises(BindingError, match="Reading.tick"):
            from_element(Reading, node)

    def test_optional_missing_is_none(self):
        reading = sample_reading()
        reading.note = None
        back = from_element(Reading, to_element(reading))
        assert back.note is None

    def test_unknown_child_rejected(self):
        node = to_element(sample_reading())
        node.children.append(leaf("extra", 1, "int"))
        with pytest.raises(BindingError, match="extra"):
            from_element(Reading, node)

    def test_duplicate_scalar_rejected(self):
        node = to_element(sample_reading())
        node.children.append(leaf("tick", 100, "long"))
        with pytest.raises(BindingError, match="2 elements"):
            from_element(Reading, node)

    def test_type_mismatch_rejected(self):
        node = to_element(sample_reading())
        for i, child in enumerate(node.children):
            if child.name.local == "tick":
                node.children[i] = leaf("tick", "not a number", "string")
        with pytest.raises(BindingError, match="tick"):
            from_element(Reading, node)

    def test_array_where_leaf_expected(self):
        @dataclass
        class P:
            x: float

        node = element("P")
        node.children.append(element("x"))  # component, not a leaf
        with pytest.raises(BindingError, match="leaf"):
            from_element(P, node)

    def test_empty_list_field(self):
        reading = sample_reading()
        reading.channels = []
        back = from_element(Reading, to_element(reading))
        assert back.channels == []

    def test_array_dtype_converted(self):
        node = to_element(sample_reading())
        # replace the f4 array with an f8 one of the same values
        from repro.xdm import array as make_array

        for i, child in enumerate(node.children):
            if child.name.local == "samples":
                node.children[i] = make_array("samples", np.linspace(0, 1, 9))
        back = from_element(Reading, node)
        assert back.samples.dtype == np.dtype("f4")


class TestNested:
    def test_deeply_nested(self):
        @dataclass
        class Leaf_:
            v: int

        @dataclass
        class Mid:
            inner: Leaf_

        @dataclass
        class Top:
            mid: Mid
            items: List[Leaf_]

        top = Top(Mid(Leaf_(1)), [Leaf_(2), Leaf_(3)])
        back = from_element(Top, decode(encode(to_element(top))))
        assert back.mid.inner.v == 1
        assert [i.v for i in back.items] == [2, 3]

    def test_list_of_non_dataclass_rejected(self):
        @dataclass
        class Bad:
            xs: List[int]

        with pytest.raises(BindingError, match="dataclasses"):
            to_element(Bad([1, 2]))

    def test_unsupported_annotation(self):
        @dataclass
        class Bad:
            x: dict

        with pytest.raises(BindingError, match="unsupported"):
            to_element(Bad({}))


class TestArrayAnnotation:
    def test_subscript_caches(self):
        assert Array["f8"] is Array["f8"]
        assert Array["f8"] is not Array["f4"]

    def test_dtype_attached(self):
        assert Array["i4"].dtype == np.dtype("i4")
