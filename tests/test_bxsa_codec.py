"""Unit tests for the BXSA encoder/decoder pair."""

import numpy as np
import pytest

from repro.bxsa import (
    BXSADecodeError,
    BXSAEncodeError,
    FrameType,
    decode,
    decode_document,
    encode,
    pack_prefix_byte,
    unpack_prefix_byte,
)
from repro.xbs import BIG_ENDIAN, LITTLE_ENDIAN
from repro.xdm import (
    ArrayElement,
    QName,
    array,
    comment,
    doc,
    element,
    explain_difference,
    leaf,
    pi,
    text,
)


def rt(node, byte_order=LITTLE_ENDIAN):
    blob = encode(node, byte_order)
    out = decode(blob)
    diff = explain_difference(node, out)
    assert diff is None, diff
    return blob, out


class TestPrefixByte:
    def test_pack_unpack(self):
        for order in (LITTLE_ENDIAN, BIG_ENDIAN):
            for ftype in FrameType:
                packed = pack_prefix_byte(order, ftype)
                assert unpack_prefix_byte(packed) == (order, ftype)

    def test_unknown_type_rejected(self):
        with pytest.raises(BXSADecodeError):
            unpack_prefix_byte(0x3F)

    def test_reserved_order_rejected(self):
        with pytest.raises(BXSADecodeError):
            unpack_prefix_byte((2 << 6) | 1)


class TestRoundTrips:
    @pytest.mark.parametrize("order", [LITTLE_ENDIAN, BIG_ENDIAN])
    def test_empty_element(self, order):
        rt(element("r"), order)

    def test_document_with_prolog(self):
        rt(doc(comment("hello"), pi("target", "data"), element("r")))

    def test_nested_elements_text(self):
        rt(element("a", element("b", text("x")), element("c", comment("y"), pi("p"))))

    @pytest.mark.parametrize("order", [LITTLE_ENDIAN, BIG_ENDIAN])
    def test_typed_leaves(self, order):
        rt(
            element(
                "r",
                leaf("i8", -5, "byte"),
                leaf("i16", -3000, "short"),
                leaf("i32", -(2**30), "int"),
                leaf("i64", 2**60, "long"),
                leaf("u8", 250, "unsignedByte"),
                leaf("u64", 2**63, "unsignedLong"),
                leaf("f32", 1.5, "float"),
                leaf("f64", 0.1 + 0.2, "double"),
                leaf("b", True, "boolean"),
                leaf("s", "héllo ☃", "string"),
            ),
            order,
        )

    @pytest.mark.parametrize("order", [LITTLE_ENDIAN, BIG_ENDIAN])
    def test_arrays(self, order):
        rt(
            element(
                "r",
                array("d", np.linspace(0, 1, 100)),
                array("i", np.arange(50, dtype="i4")),
                array("u", np.array([0, 255], dtype="u1")),
                array("empty", np.array([], dtype="f4")),
            ),
            order,
        )

    def test_float_specials(self):
        rt(element("r", leaf("n", float("nan")), array("v", np.array([np.inf, -np.inf, np.nan]))))

    def test_typed_attributes_fully_preserved(self):
        node = element("r")
        node.set_attribute("count", 7, "int")
        node.set_attribute("scale", 2.5, "double")
        node.set_attribute("label", "x", "string")
        node.set_attribute("flag", True, "boolean")
        _, out = rt(node)
        assert out.attribute("count").atype.xsd_name == "int"
        assert out.attribute("count").value == 7
        assert out.attribute("flag").value is True

    def test_item_name_hint_survives(self):
        node = array("v", np.arange(3, dtype="f8"), item_name="val")
        _, out = rt(node)
        assert out.item_name == "val"

    def test_deep_tree_no_recursion(self):
        from repro.xdm import TreeBuilder

        b = TreeBuilder()
        for _ in range(4000):
            b.start_element("n")
        b.leaf("x", 1, "int")
        for _ in range(4000):
            b.end_element()
        rt(b.document)

    def test_wide_tree(self):
        node = element("r", *[leaf(f"c{i}", i, "int") for i in range(500)])
        rt(node)


class TestNamespaces:
    def test_declared_namespace_roundtrip(self):
        node = element(
            QName("Envelope", "urn:soap", "s"),
            element(QName("Body", "urn:soap", "s")),
            namespaces={"s": "urn:soap"},
        )
        _, out = rt(node)
        assert out.name.uri == "urn:soap"
        assert out.name.prefix == "s"  # prefix recovered from the symbol table

    def test_parent_scope_reference(self):
        inner = element(QName("c", "urn:x", "p"))
        node = element(QName("r", "urn:x", "p"), inner, namespaces={"p": "urn:x"})
        blob, out = rt(node)
        # uri "urn:x" must appear exactly once in the encoding (tokenization)
        assert blob.count(b"urn:x") == 1

    def test_auto_declaration(self):
        node = element(QName("r", "urn:auto"))
        blob = encode(node)
        out = decode(blob)
        assert out.name.uri == "urn:auto"
        # decoder materializes the auto-declaration
        assert any(ns.uri == "urn:auto" for ns in out.namespaces)

    def test_shadowing(self):
        inner = element(QName("c", "urn:2", "p"), namespaces={"p": "urn:2"})
        node = element(QName("r", "urn:1", "p"), inner, namespaces={"p": "urn:1"})
        _, out = rt(node)
        assert next(out.elements()).name.uri == "urn:2"

    def test_default_namespace(self):
        node = element(QName("r", "urn:d"), namespaces={"": "urn:d"})
        rt(node)

    def test_qualified_attributes(self):
        node = element("r", namespaces={"m": "urn:meta"})
        node.set_attribute(QName("id", "urn:meta", "m"), "x7")
        _, out = rt(node)
        assert out.attribute(QName("id", "urn:meta")).value == "x7"

    def test_duplicate_prefix_rejected(self):
        node = element("r")
        node.declare_namespace("p", "urn:1")
        node.declare_namespace("p", "urn:2")
        with pytest.raises(BXSAEncodeError):
            encode(node)

    def test_duplicate_attribute_rejected(self):
        from repro.xdm.nodes import AttributeNode

        node = element("r")
        node.attributes.append(AttributeNode("a", "1"))
        node.attributes.append(AttributeNode("a", "2"))
        with pytest.raises(BXSAEncodeError):
            encode(node)


class TestMixedEndianness:
    def test_be_frame_embedded_in_le_document(self):
        """Frames carry their own byte order, so splicing works (§4.1)."""
        le_child = encode(leaf("x", 1, "int"), LITTLE_ENDIAN)
        be_child = encode(array("v", np.arange(4, dtype="f8")), BIG_ENDIAN)
        # hand-build a component element frame containing both
        import repro.xbs.varint as varint

        header = bytes([pack_prefix_byte(LITTLE_ENDIAN, FrameType.COMPONENT_ELEMENT)])
        body = (
            varint.encode_vls(0)  # N1: no namespace declarations
            + varint.encode_vls(0)  # name ref: no namespace
            + varint.encode_vls(1)
            + b"r"  # local name "r"
            + varint.encode_vls(0)  # N2: no attributes
            + varint.encode_vls(2)  # two children
            + le_child
            + be_child
        )
        blob = header + varint.encode_vls(len(body)) + body
        out = decode(blob)
        kids = list(out.elements())
        assert kids[0].value == 1
        np.testing.assert_array_equal(np.asarray(kids[1].values, dtype="f8"), np.arange(4.0))

    def test_big_endian_array_values_correct(self):
        values = np.array([1.0, -2.5, 3e300])
        blob = encode(array("v", values), BIG_ENDIAN)
        out = decode(blob)
        np.testing.assert_array_equal(np.asarray(out.values, dtype="f8"), values)


class TestZeroCopy:
    def test_array_is_view_by_default(self):
        blob = encode(array("v", np.arange(64, dtype="f8")))
        out = decode(blob)
        assert isinstance(out, ArrayElement)
        assert out.values.base is not None
        assert not out.values.flags.writeable

    def test_copy_mode_gives_writable_native(self):
        blob = encode(array("v", np.arange(64, dtype="f8")), BIG_ENDIAN)
        out = decode(blob, copy=True)
        assert out.values.flags.writeable
        assert out.values.dtype.isnative

    def test_alignment_pad_present(self):
        """Payload starts at a multiple of the item size within the body."""
        blob = encode(doc(element("r", array("v", np.arange(8, dtype="f8")))))
        # decode succeeds and values match regardless of surrounding offsets
        out = decode_document(blob)
        np.testing.assert_array_equal(
            np.asarray(out.root.children[0].values), np.arange(8.0)
        )


class TestErrors:
    def test_truncated_stream(self):
        blob = encode(element("r", leaf("x", 1, "int")))
        for cut in (1, len(blob) // 2, len(blob) - 1):
            with pytest.raises(BXSADecodeError):
                decode(blob[:cut])

    def test_trailing_garbage(self):
        blob = encode(element("r")) + b"\x00"
        with pytest.raises(BXSADecodeError):
            decode(blob)

    def test_size_field_lies(self):
        blob = bytearray(encode(element("r", text("hello"))))
        # inflate the root frame's size field (single-byte VLS)
        blob[1] += 1
        with pytest.raises(BXSADecodeError):
            decode(bytes(blob) + b"\x00")

    def test_unknown_frame_type(self):
        with pytest.raises(BXSADecodeError):
            decode(bytes([0x3E, 0x00]))

    def test_bad_namespace_reference(self):
        import repro.xbs.varint as varint

        header = bytes([pack_prefix_byte(LITTLE_ENDIAN, FrameType.LEAF_ELEMENT)])
        body = (
            varint.encode_vls(0)  # no declarations
            + varint.encode_vls(1)  # scope depth 1 (but table is empty)
            + varint.encode_vls(0)
            + varint.encode_vls(1)
            + b"x"
            + varint.encode_vls(0)  # no attributes
            + bytes([3])  # INT32
            + b"\x01\x00\x00\x00"
        )
        with pytest.raises(BXSADecodeError):
            decode(header + varint.encode_vls(len(body)) + body)

    def test_empty_input(self):
        with pytest.raises(BXSADecodeError):
            decode(b"")

    def test_decode_document_requires_document(self):
        blob = encode(element("r"))
        with pytest.raises(BXSADecodeError):
            decode_document(blob)


class TestCompactness:
    def test_binary_smaller_than_xml_for_arrays(self):
        from repro.xmlcodec import serialize

        node = element("r", array("v", np.random.default_rng(0).random(1000)))
        blob = encode(node)
        xml = serialize(node)
        assert len(blob) < len(xml.encode()) / 1.8

    def test_array_overhead_is_small(self):
        values = np.arange(1000, dtype="f8")
        blob = encode(array("v", values))
        assert len(blob) < values.nbytes * 1.01 + 64


class TestCopyFalseAliasing:
    """The exact ``decode(..., copy=False)`` aliasing contract (see the
    :func:`repro.bxsa.decode` docstring): everything except array payloads
    is fully materialized, array payloads alias the source buffer."""

    def _tree(self):
        return doc(
            element(
                QName("root", "urn:envelope", "env"),
                leaf("s", "materialized-string-value"),
                leaf("n", 42, "int"),
                array("a", np.arange(8, dtype=np.float64)),
                attributes={"id": "attr-value"},
                namespaces={"env": "urn:envelope"},
            )
        )

    def test_materialized_values_survive_buffer_mutation(self):
        buf = bytearray(encode(self._tree()))
        out = decode(buf, copy=False)
        root = out.children[0]
        s, n, _a = root.children
        buf[:] = b"\x00" * len(buf)  # clobber the source completely
        assert s.value == "materialized-string-value"
        assert n.value == 42
        assert root.attributes[0].value == "attr-value"
        assert root.name.local == "root"
        assert root.name.uri == "urn:envelope"
        assert root.namespaces[0].uri == "urn:envelope"

    def test_array_values_alias_writable_source(self):
        buf = bytearray(encode(self._tree()))
        arr = decode(buf, copy=False).children[0].children[2]
        assert arr.values[3] == 3.0
        buf[:] = b"\x00" * len(buf)
        assert np.array_equal(arr.values, np.zeros(8))  # view sees the zeroing

    def test_array_view_is_readonly_over_immutable_source(self):
        blob = bytes(encode(self._tree()))
        arr = decode(blob, copy=False).children[0].children[2]
        assert not arr.values.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            arr.values[0] = 99.0

    def test_copy_true_gives_independent_writable_arrays(self):
        buf = bytearray(encode(self._tree()))
        arr = decode(buf, copy=True).children[0].children[2]
        buf[:] = b"\x00" * len(buf)
        assert np.array_equal(arr.values, np.arange(8, dtype=np.float64))
        arr.values[0] = 99.0  # writable
        assert arr.values.dtype.isnative
