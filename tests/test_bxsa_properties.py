"""Property-based tests for the BXSA codec and transcoding."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bxsa import (
    BXSADecodeError,
    FrameScanner,
    bxsa_to_xml,
    decode,
    encode,
    xml_to_bxsa,
)
from repro.xbs import BIG_ENDIAN, LITTLE_ENDIAN
from repro.xdm import deep_equal, explain_difference

from tests.strategies import documents

pytestmark = pytest.mark.slow

_settings = settings(
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)

orders = st.sampled_from([LITTLE_ENDIAN, BIG_ENDIAN])


@given(documents(), orders)
@_settings
def test_roundtrip_exact(tree, order):
    """BXSA round-trips are *exact* — namespace declarations included —
    whenever every referenced namespace is declared or auto-declared."""
    blob = encode(tree, order)
    out = decode(blob)
    # Auto-declarations make the decoded tree a superset; re-encode both and
    # compare the stable forms.
    blob2 = encode(out, order)
    out2 = decode(blob2)
    diff = explain_difference(out, out2)
    assert diff is None, diff


@given(documents(), orders)
@_settings
def test_roundtrip_data_model(tree, order):
    out = decode(encode(tree, order))
    diff = explain_difference(tree, out, ignore_ns_decls=True)
    assert diff is None, diff


@given(documents())
@_settings
def test_endianness_invariance(tree):
    le = decode(encode(tree, LITTLE_ENDIAN))
    be = decode(encode(tree, BIG_ENDIAN))
    assert deep_equal(le, be, ignore_ns_decls=True)


@given(documents())
@_settings
def test_scanner_agrees_with_decoder(tree):
    blob = encode(tree)
    s = FrameScanner(blob)
    info = s.frame_at(0)
    assert info.end == len(blob)
    # every frame the scanner reports must decode cleanly, given its
    # ancestors' namespace tables (QName refs may reach outer scopes)
    for frame, ancestors in s.walk_with_ancestors(0):
        s.decode_frame(frame.start, ancestors=ancestors)


@given(documents())
@_settings
def test_transcode_binary_text_binary(tree):
    blob = encode(tree)
    xml = bxsa_to_xml(blob)
    out = decode(xml_to_bxsa(xml))
    original = decode(blob)
    diff = explain_difference(original, out, ignore_ns_decls=True)
    assert diff is None, f"{diff}\nXML: {xml[:400]}"


@given(st.binary(max_size=200))
@_settings
def test_decoder_rejects_garbage_gracefully(blob):
    """Random bytes either decode or raise BXSADecodeError — never crash."""
    try:
        decode(blob)
    except BXSADecodeError:
        pass


@given(documents(), st.data())
@_settings
def test_truncation_always_detected(tree, data):
    blob = encode(tree)
    if len(blob) < 2:
        return
    cut = data.draw(st.integers(1, len(blob) - 1))
    try:
        node = decode(blob[:cut])
    except BXSADecodeError:
        return
    # A truncated prefix can never decode to the full document.
    raise AssertionError(f"truncated blob decoded silently to {node!r}")


@given(documents(), orders)
@_settings
def test_stream_reader_agrees_with_tree_decoder(tree, order):
    """Replaying the event stream into a tree builder reproduces exactly
    what the tree decoder builds — the two consumption paths are one
    semantics."""
    from repro.bxsa.stream import BXSAStreamReader, EventKind
    from repro.xdm.nodes import (
        ArrayElement,
        CommentNode,
        DocumentNode,
        ElementNode,
        LeafElement,
        PINode,
        TextNode,
    )

    blob = encode(tree, order)
    expected = decode(blob)

    stack = []
    root_holder = []

    def attach(node):
        if stack:
            stack[-1].children.append(node)
        else:
            root_holder.append(node)

    for event in BXSAStreamReader(blob):
        if event.kind is EventKind.START_DOCUMENT:
            node = DocumentNode()
            attach(node)
            stack.append(node)
        elif event.kind in (EventKind.END_DOCUMENT, EventKind.END_ELEMENT):
            stack.pop()
        elif event.kind is EventKind.START_ELEMENT:
            node = ElementNode(
                event.name,
                attributes=list(event.attributes),
                namespaces=list(event.namespaces),
            )
            attach(node)
            stack.append(node)
        elif event.kind is EventKind.LEAF:
            attach(
                LeafElement(
                    event.name,
                    event.value,
                    event.atype,
                    attributes=list(event.attributes),
                    namespaces=list(event.namespaces),
                )
            )
        elif event.kind is EventKind.ARRAY:
            attach(
                ArrayElement(
                    event.name,
                    event.values,
                    event.atype,
                    attributes=list(event.attributes),
                    namespaces=list(event.namespaces),
                    item_name=event.item_name,
                )
            )
        elif event.kind is EventKind.TEXT:
            attach(TextNode(event.text))
        elif event.kind is EventKind.COMMENT:
            attach(CommentNode(event.text))
        elif event.kind is EventKind.PI:
            attach(PINode(event.target, event.text))

    (rebuilt,) = root_holder
    diff = explain_difference(expected, rebuilt)
    assert diff is None, diff
