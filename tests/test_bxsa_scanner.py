"""Unit tests for the accelerated sequential access scanner (§4.1)."""

import numpy as np
import pytest

from repro.bxsa import BXSADecodeError, FrameScanner, FrameType, encode
from repro.xdm import array, comment, doc, element, leaf, pi, text


def sample_blob():
    tree = doc(
        element(
            "Envelope",
            element(
                "Body",
                leaf("count", 3, "int"),
                array("values", np.arange(1000, dtype="f8")),
                element("meta", text("hello")),
                comment("note"),
                pi("t", "d"),
            ),
        )
    )
    return encode(tree)


class TestScanner:
    def test_frame_at_root(self):
        blob = sample_blob()
        info = FrameScanner(blob).frame_at(0)
        assert info.frame_type is FrameType.DOCUMENT
        assert info.end == len(blob)
        assert info.total_size == len(blob)

    def test_children_iteration(self):
        s = FrameScanner(sample_blob())
        root = s.frame_at(0)
        envelope = next(s.children(0))
        assert envelope.frame_type is FrameType.COMPONENT_ELEMENT
        body = next(s.children(envelope.start))
        kids = list(s.children(body.start))
        assert [k.frame_type for k in kids] == [
            FrameType.LEAF_ELEMENT,
            FrameType.ARRAY_ELEMENT,
            FrameType.COMPONENT_ELEMENT,
            FrameType.COMMENT,
            FrameType.PI,
        ]

    def test_child_count_without_decode(self):
        s = FrameScanner(sample_blob())
        envelope = next(s.children(0))
        body = next(s.children(envelope.start))
        assert s.child_count(body.start) == 5

    def test_element_names_without_decode(self):
        s = FrameScanner(sample_blob())
        envelope = next(s.children(0))
        assert s.element_name(envelope.start) == "Envelope"
        body = next(s.children(envelope.start))
        names = [
            s.element_name(k.start)
            for k in s.children(body.start)
            if k.frame_type
            in (FrameType.LEAF_ELEMENT, FrameType.ARRAY_ELEMENT, FrameType.COMPONENT_ELEMENT)
        ]
        assert names == ["count", "values", "meta"]

    def test_find_child_named(self):
        s = FrameScanner(sample_blob())
        envelope = next(s.children(0))
        body = next(s.children(envelope.start))
        meta = s.find_child_named(body.start, "meta")
        assert meta is not None
        assert s.element_name(meta.start) == "meta"
        assert s.find_child_named(body.start, "absent") is None

    def test_nth_child_skips_siblings(self):
        """Reaching child 2 must not decode the 8 KB array at child 1."""
        s = FrameScanner(sample_blob())
        envelope = next(s.children(0))
        body = next(s.children(envelope.start))
        third = s.child(body.start, 2)
        node = s.decode_frame(third.start)
        assert node.name.local == "meta"

    def test_child_index_out_of_range(self):
        s = FrameScanner(sample_blob())
        with pytest.raises(IndexError):
            s.child(0, 5)

    def test_decode_frame_mid_document(self):
        s = FrameScanner(sample_blob())
        envelope = next(s.children(0))
        body = next(s.children(envelope.start))
        arr_info = s.child(body.start, 1)
        node = s.decode_frame(arr_info.start)
        np.testing.assert_array_equal(np.asarray(node.values), np.arange(1000.0))

    def test_iter_frames_covers_everything(self):
        s = FrameScanner(sample_blob())
        types = [i.frame_type for i in s.iter_frames(0)]
        assert types.count(FrameType.DOCUMENT) == 1
        assert types.count(FrameType.COMPONENT_ELEMENT) == 3  # Envelope, Body, meta
        assert types.count(FrameType.ARRAY_ELEMENT) == 1
        assert types.count(FrameType.CHARACTER_DATA) == 1

    def test_children_of_leaf_rejected(self):
        blob = encode(leaf("x", 1, "int"))
        with pytest.raises(BXSADecodeError):
            list(FrameScanner(blob).children(0))

    def test_element_name_of_text_rejected(self):
        blob = encode(element("r", text("x")))
        s = FrameScanner(blob)
        kid = next(s.children(0))
        with pytest.raises(BXSADecodeError):
            s.element_name(kid.start)

    def test_scan_cost_independent_of_array_size(self):
        """Scanning headers must not touch array payloads (spot-check)."""
        small = encode(element("r", array("v", np.arange(10, dtype="f8")), leaf("x", 1)))
        big = encode(element("r", array("v", np.arange(100000, dtype="f8")), leaf("x", 1)))
        for blob in (small, big):
            s = FrameScanner(blob)
            last = s.child(0, 1)
            assert s.element_name(last.start) == "x"
