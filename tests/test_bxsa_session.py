"""Tests for :class:`repro.bxsa.session.CodecSession`.

The load-bearing property is byte compatibility: a warm session must put
exactly the stateless encoder's bytes on the wire, for every tree, and its
output must decode with a completely stateless decoder.  The property test
additionally asserts ``poisoned_shapes == 0`` so any compiler blind spot a
generated tree exposes fails loudly instead of silently costing performance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bxsa import (
    BXSADecodeError,
    BXSAEncodeError,
    CodecSession,
    decode,
    encode,
)
from repro.bxsa.session import _OP_CONST, EncodePlan
from repro.xbs import BIG_ENDIAN, TypeCode
from repro.xdm import (
    ArrayElement,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    PINode,
    TextNode,
    array,
    doc,
    element,
    explain_difference,
    leaf,
    text,
)
from repro.xdm.nodes import AttributeNode, NamespaceNode

from tests.strategies import documents

_settings = settings(
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


# ---------------------------------------------------------------------------
# structure-preserving value perturbation: same shape key, different payload


def _perturb_scalar(atype, value):
    code = atype.code
    if code is TypeCode.STRING:
        return value + "x"
    if code is TypeCode.BOOL:
        return not value
    return 1 if value != 1 else 0


def _perturb_attrs(attrs):
    return [
        AttributeNode(a.name, _perturb_scalar(a.atype, a.value), a.atype) for a in attrs
    ]


def _copy_ns(node):
    return [NamespaceNode(ns.prefix, ns.uri) for ns in node.namespaces]


def perturbed(node):
    """A deep copy of ``node`` with every *value* changed and every
    structural property (names, namespaces, attribute names/types, child
    counts, array dtypes, PI targets) preserved — by construction it has
    the same shape key, so a session reuses the original's plan.  Array
    lengths change too: length is payload, not shape.
    """
    if isinstance(node, LeafElement):
        return LeafElement(
            node.name,
            _perturb_scalar(node.atype, node.value),
            node.atype,
            attributes=_perturb_attrs(node.attributes),
            namespaces=_copy_ns(node),
        )
    if isinstance(node, ArrayElement):
        return ArrayElement(
            node.name,
            np.ones(node.values.size + 1, dtype=node.atype.dtype),
            node.atype,
            attributes=_perturb_attrs(node.attributes),
            namespaces=_copy_ns(node),
            item_name=node.item_name,
        )
    if isinstance(node, DocumentNode):
        return DocumentNode([perturbed(child) for child in node.children])
    if isinstance(node, ElementNode):
        return ElementNode(
            node.name,
            attributes=_perturb_attrs(node.attributes),
            namespaces=_copy_ns(node),
            children=[perturbed(child) for child in node.children],
        )
    if isinstance(node, TextNode):
        return TextNode(node.text + "y")
    if isinstance(node, CommentNode):
        return CommentNode(node.text + "y")
    if isinstance(node, PINode):
        return PINode(node.target, node.data + "y")
    raise AssertionError(f"unexpected node {type(node).__name__}")


# ---------------------------------------------------------------------------
# the core property (ISSUE satellite: N-message byte-identity)


@pytest.mark.slow
@given(documents())
@_settings
def test_session_byte_identical_to_independent_encoders(tree):
    """Encoding N structurally-identical messages through one session is
    byte-identical to N independent stateless encoders, the warm output
    decodes with the stateless decoder, and no generated shape poisons."""
    session = CodecSession()
    messages = [tree, perturbed(tree), perturbed(perturbed(tree))]
    for message in messages:
        warm = session.encode(message)
        assert warm == encode(message)
        out = decode(warm)
        diff = explain_difference(message, out, ignore_ns_decls=True)
        assert diff is None, diff
    assert session.stats.poisoned_shapes == 0
    assert session.stats.plans_compiled == 1
    assert session.stats.plan_hits == len(messages) - 1


@pytest.mark.slow
@given(documents())
@_settings
def test_session_decode_agrees_with_stateless_decoder(tree):
    session = CodecSession()
    blob = encode(tree)
    for _ in range(2):  # second pass hits the intern tables
        out = session.decode(blob)
        diff = explain_difference(decode(blob), out)
        assert diff is None, diff


@pytest.mark.slow
@given(documents())
@_settings
def test_session_big_endian_matches_stateless(tree):
    session = CodecSession(BIG_ENDIAN)
    assert session.encode(tree) == encode(tree, BIG_ENDIAN)
    assert session.encode(perturbed(tree)) == encode(perturbed(tree), BIG_ENDIAN)


# ---------------------------------------------------------------------------
# unit tests


def _sample_doc(seed: int = 0) -> DocumentNode:
    env = element(
        "env:Envelope",
        element(
            "env:Body",
            array("data", np.arange(seed, seed + 16, dtype=np.float64), item_name="d"),
            leaf("count", seed + 3, "int", attributes={"id": f"v{seed}"}),
            leaf("tag", f"value-{seed}"),
            text(f"t{seed}"),
        ),
        namespaces={"env": "urn:envelope"},
    )
    return doc(env)


class TestPlanLifecycle:
    def test_same_shape_replays_one_plan(self):
        session = CodecSession()
        for seed in range(4):
            assert session.encode(_sample_doc(seed)) == encode(_sample_doc(seed))
        assert session.stats.plans_compiled == 1
        assert session.stats.plan_hits == 3
        assert session.stats.poisoned_shapes == 0

    def test_distinct_shapes_compile_distinct_plans(self):
        session = CodecSession()
        session.encode(doc(element("a", leaf("x", 1, "int"))))
        session.encode(doc(element("b", leaf("x", 1, "int"))))
        assert session.stats.plans_compiled == 2

    def test_array_length_is_payload_not_shape(self):
        session = CodecSession()
        for n in (0, 1, 7, 1365):
            d = doc(array("a", np.arange(n, dtype=np.float64)))
            assert session.encode(d) == encode(d)
        assert session.stats.plans_compiled == 1
        assert session.stats.plan_hits == 3

    def test_plan_cache_is_bounded(self):
        session = CodecSession(max_plans=2)
        for name in ("a", "b", "c", "d"):
            d = doc(element(name, leaf("x", 1, "int")))
            assert session.encode(d) == encode(d)
        assert len(session._plans) <= 2
        # evicted shapes still encode correctly (they just recompile)
        d = doc(element("a", leaf("x", 9, "int")))
        assert session.encode(d) == encode(d)

    def test_reset_returns_to_cold_state(self):
        session = CodecSession()
        session.encode(_sample_doc())
        session.decode(encode(_sample_doc()))
        session.reset()
        assert session._plans == {}
        assert session.stats.plans_compiled == 0
        assert session.encode(_sample_doc()) == encode(_sample_doc())
        assert session.stats.plans_compiled == 1


class TestSelfVerification:
    def test_divergent_plan_poisons_shape(self, monkeypatch):
        session = CodecSession()
        monkeypatch.setattr(
            session, "_compile", lambda root: EncodePlan([(_OP_CONST, b"bad")], 1)
        )
        d = _sample_doc()
        # the divergent plan never reaches the wire
        assert session.encode(d) == encode(d)
        assert session.stats.poisoned_shapes == 1
        monkeypatch.undo()
        # the shape stays on the stateless path even with a good compiler
        assert session.encode(d) == encode(d)
        assert session.stats.plan_hits == 0
        assert session.stats.stateless_encodes == 2

    def test_compiler_crash_poisons_shape(self, monkeypatch):
        session = CodecSession()

        def boom(root):
            raise RuntimeError("compiler blind spot")

        monkeypatch.setattr(session, "_compile", boom)
        d = _sample_doc()
        assert session.encode(d) == encode(d)
        assert session.stats.poisoned_shapes == 1

    def test_invalid_tree_raises_like_stateless(self):
        bad = doc(
            ElementNode(
                "r",
                attributes=[AttributeNode("a", "1"), AttributeNode("a", "2")],
            )
        )
        session = CodecSession()
        with pytest.raises(BXSAEncodeError):
            session.encode(bad)
        # the failed shape must not leave a cached plan behind
        assert session.stats.plans_compiled == 0


class TestSessionDecode:
    def test_interns_names_across_messages(self):
        session = CodecSession()
        blob = encode(_sample_doc(1))
        first = session.decode(blob)
        second = session.decode(bytes(encode(_sample_doc(2))))
        root1 = first.children[0]
        root2 = second.children[0]
        assert root1.name is root2.name  # QName interned across decodes
        leaf1 = root1.children[0].children[1]
        leaf2 = root2.children[0].children[1]
        assert leaf1.name is leaf2.name

    def test_value_strings_are_not_interned(self):
        session = CodecSession()
        d = doc(element("r", leaf("s", "shared-value-string")))
        one = session.decode(encode(d))
        two = session.decode(encode(d))
        v1 = one.children[0].children[0].value
        v2 = two.children[0].children[0].value
        assert v1 == v2 == "shared-value-string"
        assert v1 is not v2

    def test_rejects_trailing_bytes(self):
        session = CodecSession()
        blob = encode(_sample_doc())
        with pytest.raises(BXSADecodeError):
            session.decode(bytes(blob) + b"\x00")

    def test_honours_copy_flag(self):
        session = CodecSession()
        buf = bytearray(encode(doc(array("a", np.arange(4, dtype=np.float64)))))
        aliased = session.decode(buf).children[0]
        independent = session.decode(buf, copy=True).children[0]
        buf[-4 * 8 :] = b"\x00" * (4 * 8)
        assert aliased.values[1] == 0.0  # view over the (zeroed) buffer
        assert independent.values[1] == 1.0


class TestBufferPooling:
    def test_scratch_list_is_reused(self):
        session = CodecSession()
        session.encode(_sample_doc(0))
        scratch = session._scratch
        assert scratch == []
        session.encode(_sample_doc(1))
        assert session._scratch is scratch

    def test_concurrent_takers_never_share_scratch(self):
        # simulate a second thread holding the pooled list mid-replay
        session = CodecSession()
        session.encode(_sample_doc(0))
        taken = session.__dict__.pop("_scratch")
        assert session.encode(_sample_doc(1)) == encode(_sample_doc(1))
        assert session._scratch is not taken
