"""Tests for :class:`repro.bxsa.session.CodecSession`.

The load-bearing property is byte compatibility: a warm session must put
exactly the stateless encoder's bytes on the wire, for every tree, and its
output must decode with a completely stateless decoder.  The property test
additionally asserts ``poisoned_shapes == 0`` so any compiler blind spot a
generated tree exposes fails loudly instead of silently costing performance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bxsa import (
    BXSADecodeError,
    BXSAEncodeError,
    CodecSession,
    decode,
    encode,
)
from repro.bxsa.decodeplan import _D_ELEM, _D_LEAF
from repro.bxsa.session import _OP_CONST, EncodePlan
from repro.xdm.qname import QName
from repro.xbs import BIG_ENDIAN, TypeCode
from repro.xdm import (
    ArrayElement,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    PINode,
    TextNode,
    array,
    doc,
    element,
    explain_difference,
    leaf,
    text,
)
from repro.xdm.nodes import AttributeNode, NamespaceNode

from tests.strategies import documents

_settings = settings(
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


# ---------------------------------------------------------------------------
# structure-preserving value perturbation: same shape key, different payload


def _perturb_scalar(atype, value):
    code = atype.code
    if code is TypeCode.STRING:
        return value + "x"
    if code is TypeCode.BOOL:
        return not value
    return 1 if value != 1 else 0


def _perturb_attrs(attrs):
    return [
        AttributeNode(a.name, _perturb_scalar(a.atype, a.value), a.atype) for a in attrs
    ]


def _copy_ns(node):
    return [NamespaceNode(ns.prefix, ns.uri) for ns in node.namespaces]


def perturbed(node):
    """A deep copy of ``node`` with every *value* changed and every
    structural property (names, namespaces, attribute names/types, child
    counts, array dtypes, PI targets) preserved — by construction it has
    the same shape key, so a session reuses the original's plan.  Array
    lengths change too: length is payload, not shape.
    """
    if isinstance(node, LeafElement):
        return LeafElement(
            node.name,
            _perturb_scalar(node.atype, node.value),
            node.atype,
            attributes=_perturb_attrs(node.attributes),
            namespaces=_copy_ns(node),
        )
    if isinstance(node, ArrayElement):
        return ArrayElement(
            node.name,
            np.ones(node.values.size + 1, dtype=node.atype.dtype),
            node.atype,
            attributes=_perturb_attrs(node.attributes),
            namespaces=_copy_ns(node),
            item_name=node.item_name,
        )
    if isinstance(node, DocumentNode):
        return DocumentNode([perturbed(child) for child in node.children])
    if isinstance(node, ElementNode):
        return ElementNode(
            node.name,
            attributes=_perturb_attrs(node.attributes),
            namespaces=_copy_ns(node),
            children=[perturbed(child) for child in node.children],
        )
    if isinstance(node, TextNode):
        return TextNode(node.text + "y")
    if isinstance(node, CommentNode):
        return CommentNode(node.text + "y")
    if isinstance(node, PINode):
        return PINode(node.target, node.data + "y")
    raise AssertionError(f"unexpected node {type(node).__name__}")


# ---------------------------------------------------------------------------
# the core property (ISSUE satellite: N-message byte-identity)


@pytest.mark.slow
@given(documents())
@_settings
def test_session_byte_identical_to_independent_encoders(tree):
    """Encoding N structurally-identical messages through one session is
    byte-identical to N independent stateless encoders, the warm output
    decodes with the stateless decoder, and no generated shape poisons."""
    session = CodecSession()
    messages = [tree, perturbed(tree), perturbed(perturbed(tree))]
    for message in messages:
        warm = session.encode(message)
        assert warm == encode(message)
        out = decode(warm)
        diff = explain_difference(message, out, ignore_ns_decls=True)
        assert diff is None, diff
    assert session.stats.poisoned_shapes == 0
    assert session.stats.plans_compiled == 1
    assert session.stats.plan_hits == len(messages) - 1


@pytest.mark.slow
@given(documents())
@_settings
def test_session_decode_agrees_with_stateless_decoder(tree):
    session = CodecSession()
    blob = encode(tree)
    for _ in range(2):  # second pass hits the intern tables
        out = session.decode(blob)
        diff = explain_difference(decode(blob), out)
        assert diff is None, diff


@pytest.mark.slow
@given(documents())
@_settings
def test_session_decode_stream_node_equal_to_stateless(tree):
    """ISSUE acceptance property: an N-message same-shape stream decoded
    through one session (stateless first decode, verified plan replay after)
    is node-equal to the stateless decoder's output — with and without
    ``copy=False`` — and no generated shape poisons its fingerprint."""
    session = CodecSession()
    blobs = [encode(m) for m in (tree, perturbed(tree), perturbed(perturbed(tree)))]
    for i, blob in enumerate(blobs):
        for copy in (False, True):
            out = session.decode(blob, copy=copy)
            diff = explain_difference(decode(blob, copy=copy), out)
            assert diff is None, f"message {i} copy={copy}: {diff}"
    assert session.stats.decode_poisoned == 0
    assert session.stats.decode_plan_hits > 0


@pytest.mark.slow
@given(documents())
@_settings
def test_session_big_endian_matches_stateless(tree):
    session = CodecSession(BIG_ENDIAN)
    assert session.encode(tree) == encode(tree, BIG_ENDIAN)
    assert session.encode(perturbed(tree)) == encode(perturbed(tree), BIG_ENDIAN)


# ---------------------------------------------------------------------------
# unit tests


def _sample_doc(seed: int = 0) -> DocumentNode:
    env = element(
        "env:Envelope",
        element(
            "env:Body",
            array("data", np.arange(seed, seed + 16, dtype=np.float64), item_name="d"),
            leaf("count", seed + 3, "int", attributes={"id": f"v{seed}"}),
            leaf("tag", f"value-{seed}"),
            text(f"t{seed}"),
        ),
        namespaces={"env": "urn:envelope"},
    )
    return doc(env)


class TestPlanLifecycle:
    def test_same_shape_replays_one_plan(self):
        session = CodecSession()
        for seed in range(4):
            assert session.encode(_sample_doc(seed)) == encode(_sample_doc(seed))
        assert session.stats.plans_compiled == 1
        assert session.stats.plan_hits == 3
        assert session.stats.poisoned_shapes == 0

    def test_distinct_shapes_compile_distinct_plans(self):
        session = CodecSession()
        session.encode(doc(element("a", leaf("x", 1, "int"))))
        session.encode(doc(element("b", leaf("x", 1, "int"))))
        assert session.stats.plans_compiled == 2

    def test_array_length_is_payload_not_shape(self):
        session = CodecSession()
        for n in (0, 1, 7, 1365):
            d = doc(array("a", np.arange(n, dtype=np.float64)))
            assert session.encode(d) == encode(d)
        assert session.stats.plans_compiled == 1
        assert session.stats.plan_hits == 3

    def test_plan_cache_is_bounded(self):
        session = CodecSession(max_plans=2)
        for name in ("a", "b", "c", "d"):
            d = doc(element(name, leaf("x", 1, "int")))
            assert session.encode(d) == encode(d)
        assert len(session._plans) <= 2
        # evicted shapes still encode correctly (they just recompile)
        d = doc(element("a", leaf("x", 9, "int")))
        assert session.encode(d) == encode(d)

    def test_reset_returns_to_cold_state(self):
        session = CodecSession()
        session.encode(_sample_doc())
        session.decode(encode(_sample_doc()))
        session.reset()
        assert session._plans == {}
        assert session.stats.plans_compiled == 0
        assert session.encode(_sample_doc()) == encode(_sample_doc())
        assert session.stats.plans_compiled == 1


class TestSelfVerification:
    def test_divergent_plan_poisons_shape(self, monkeypatch):
        session = CodecSession()
        monkeypatch.setattr(
            session, "_compile", lambda root: EncodePlan([(_OP_CONST, b"bad")], 1)
        )
        d = _sample_doc()
        # the divergent plan never reaches the wire
        assert session.encode(d) == encode(d)
        assert session.stats.poisoned_shapes == 1
        monkeypatch.undo()
        # the shape stays on the stateless path even with a good compiler
        assert session.encode(d) == encode(d)
        assert session.stats.plan_hits == 0
        assert session.stats.stateless_encodes == 2

    def test_compiler_crash_poisons_shape(self, monkeypatch):
        session = CodecSession()

        def boom(root):
            raise RuntimeError("compiler blind spot")

        monkeypatch.setattr(session, "_compile", boom)
        d = _sample_doc()
        assert session.encode(d) == encode(d)
        assert session.stats.poisoned_shapes == 1

    def test_invalid_tree_raises_like_stateless(self):
        bad = doc(
            ElementNode(
                "r",
                attributes=[AttributeNode("a", "1"), AttributeNode("a", "2")],
            )
        )
        session = CodecSession()
        with pytest.raises(BXSAEncodeError):
            session.encode(bad)
        # the failed shape must not leave a cached plan behind
        assert session.stats.plans_compiled == 0


class TestSessionDecode:
    def test_interns_names_across_messages(self):
        session = CodecSession()
        blob = encode(_sample_doc(1))
        first = session.decode(blob)
        second = session.decode(bytes(encode(_sample_doc(2))))
        root1 = first.children[0]
        root2 = second.children[0]
        assert root1.name is root2.name  # QName interned across decodes
        leaf1 = root1.children[0].children[1]
        leaf2 = root2.children[0].children[1]
        assert leaf1.name is leaf2.name

    def test_value_strings_are_not_interned(self):
        session = CodecSession()
        d = doc(element("r", leaf("s", "shared-value-string")))
        one = session.decode(encode(d))
        two = session.decode(encode(d))
        v1 = one.children[0].children[0].value
        v2 = two.children[0].children[0].value
        assert v1 == v2 == "shared-value-string"
        assert v1 is not v2

    def test_rejects_trailing_bytes(self):
        session = CodecSession()
        blob = encode(_sample_doc())
        with pytest.raises(BXSADecodeError):
            session.decode(bytes(blob) + b"\x00")

    def test_rejects_trailing_bytes_on_warm_plan(self):
        # the trailing check must hold on the replay path, not just the
        # stateless first decode
        session = CodecSession()
        blob = bytes(encode(_sample_doc()))
        session.decode(blob)
        session.decode(blob)
        assert session.stats.decode_plan_hits > 0
        with pytest.raises(BXSADecodeError):
            session.decode(blob + b"\x00")

    def test_honours_copy_flag(self):
        session = CodecSession()
        buf = bytearray(encode(doc(array("a", np.arange(4, dtype=np.float64)))))
        aliased = session.decode(buf).children[0]
        independent = session.decode(buf, copy=True).children[0]
        buf[-4 * 8 :] = b"\x00" * (4 * 8)
        assert aliased.values[1] == 0.0  # view over the (zeroed) buffer
        assert independent.values[1] == 1.0

    def test_copy_contract_holds_across_plan_replay_and_reset(self):
        # ISSUE satellite: the documented copy=False aliasing contract must
        # hold through the *session* decode path — on the stateless first
        # decode, on warm plan replay, and again after reset()
        session = CodecSession()
        template = doc(array("a", np.arange(4, dtype=np.float64)))

        def roundtrip(copy):
            buf = bytearray(encode(template))
            values = session.decode(buf, copy=copy).children[0].values
            buf[-4 * 8 :] = b"\x00" * (4 * 8)
            return values

        assert roundtrip(copy=False)[1] == 0.0  # cold: view aliases buffer
        assert roundtrip(copy=False)[1] == 0.0  # warm replay: still a view
        assert session.stats.decode_plan_hits > 0
        assert roundtrip(copy=True)[1] == 1.0  # warm replay: independent
        session.reset()
        assert session.stats.decode_plan_hits == 0
        assert roundtrip(copy=False)[1] == 0.0  # recompiled: still a view
        assert roundtrip(copy=True)[1] == 1.0

    def test_intern_eviction_is_bounded_not_wholesale(self):
        # ISSUE satellite regression: crossing max_cached_strings used to
        # clear() the intern tables outright, resetting warm-decode state
        # mid-stream; bounded eviction must keep the newer half
        session = CodecSession(max_cached_strings=16)
        low_water = None
        for i in range(120):
            blob = encode(doc(element(f"name{i}", leaf("x", i, "int"))))
            session.decode(blob)
            strings = len(session._decode_strings)
            assert strings <= session.max_cached_strings + 4
            if i > 32:  # past warm-up the table must never drop to cold
                low_water = strings if low_water is None else min(low_water, strings)
        assert low_water is not None and low_water >= session.max_cached_strings // 2

    def test_encode_string_cache_eviction_is_bounded(self):
        session = CodecSession(max_cached_strings=16)
        for i in range(120):
            session.encode(doc(element(f"name{i}", leaf("x", i, "int"))))
            assert 0 < len(session._string_bytes) <= session.max_cached_strings + 4
        assert len(session._string_bytes) >= session.max_cached_strings // 2


# ---------------------------------------------------------------------------
# offset / trailing-byte semantics (shared across stateless and session paths)


def _stateless_decode(data, offset=0, **kw):
    return decode(data, offset, **kw)


def _session_decode(data, offset=0, **kw):
    return CodecSession().decode(data, offset, **kw)


def _warm_session_decode(data, offset=0, **kw):
    session = CodecSession()
    session.decode(data, offset, **kw)  # compile
    out = session.decode(data, offset, **kw)  # replay
    assert session.stats.decode_plan_hits >= 1
    return out


@pytest.mark.parametrize(
    "decoder",
    [_stateless_decode, _session_decode, _warm_session_decode],
    ids=["stateless", "session-cold", "session-warm"],
)
class TestOffsetSemantics:
    """ISSUE satellite: the session decode must accept the same embedded
    frame / offset / trailing-byte inputs as the stateless decoder —
    trailing bytes are only an error for whole-message decodes."""

    def test_whole_message_rejects_trailing(self, decoder):
        blob = bytes(encode(_sample_doc()))
        with pytest.raises(BXSADecodeError):
            decoder(blob + b"\x00\x00")

    def test_embedded_frame_ignores_trailing(self, decoder):
        blob = bytes(encode(_sample_doc()))
        framed = b"\xaa\xbb" + blob + b"\xcc\xdd"
        out = decoder(framed, 2)
        assert explain_difference(decode(blob), out) is None

    def test_explicit_whole_true_rejects_trailing_at_offset(self, decoder):
        blob = bytes(encode(_sample_doc()))
        with pytest.raises(BXSADecodeError):
            decoder(b"\xaa" + blob + b"\x00", 1, whole=True)

    def test_explicit_whole_false_allows_trailing_at_zero(self, decoder):
        blob = bytes(encode(_sample_doc()))
        out = decoder(blob + b"\x00\x00", whole=False)
        assert explain_difference(decode(blob), out) is None

    def test_exact_frame_at_offset_decodes(self, decoder):
        blob = bytes(encode(_sample_doc()))
        out = decoder(b"\xee" + blob, 1)
        assert explain_difference(decode(blob), out) is None


# ---------------------------------------------------------------------------
# decode-plan lifecycle


class TestDecodePlans:
    def test_same_shape_replays_one_plan(self):
        session = CodecSession()
        for seed in range(4):
            blob = encode(_sample_doc(seed))
            out = session.decode(blob)
            assert explain_difference(decode(blob), out) is None
        assert session.stats.decode_plans_compiled == 1
        assert session.stats.stateless_decodes == 1
        assert session.stats.decode_plan_hits == 3
        assert session.stats.decode_poisoned == 0

    def test_distinct_shapes_compile_distinct_plans(self):
        session = CodecSession()
        session.decode(encode(doc(element("a", leaf("x", 1, "int")))))
        session.decode(encode(doc(element("b", leaf("x", 1, "int")))))
        assert session.stats.decode_plans_compiled == 2

    def test_array_length_is_payload_not_shape(self):
        session = CodecSession()
        for n in (0, 1, 7, 1365):
            blob = encode(doc(array("a", np.arange(n, dtype=np.float64))))
            out = session.decode(blob)
            np.testing.assert_array_equal(
                out.children[0].values, np.arange(n, dtype=np.float64)
            )
        assert session.stats.decode_plans_compiled == 1
        assert session.stats.decode_plan_hits == 3

    def test_plan_cache_is_bounded(self):
        session = CodecSession(max_plans=2)
        for name in ("a", "b", "c", "d"):
            blob = encode(doc(element(name, leaf("x", 1, "int"))))
            assert explain_difference(decode(blob), session.decode(blob)) is None
        assert len(session._decode_plans) <= 2
        # evicted shapes still decode correctly (they just recompile)
        blob = encode(doc(element("a", leaf("x", 9, "int"))))
        assert explain_difference(decode(blob), session.decode(blob)) is None

    def test_shared_fingerprint_shapes_coexist(self):
        # same root element name, different bodies: the structural
        # fingerprint may collide, and the bucket must serve both shapes
        session = CodecSession()
        shapes = [
            doc(element("env", leaf("a", 1, "int"))),
            doc(element("env", leaf("b", "s"))),
        ]
        for _ in range(3):
            for shape in shapes:
                blob = encode(shape)
                assert explain_difference(decode(blob), session.decode(blob)) is None
        assert session.stats.decode_poisoned == 0
        assert session.stats.decode_plan_hits >= 2

    def test_reset_returns_decode_plans_to_cold_state(self):
        session = CodecSession()
        blob = encode(_sample_doc())
        session.decode(blob)
        session.decode(blob)
        assert session._decode_plans
        session.reset()
        assert session._decode_plans == {}
        assert session.stats.decode_plans_compiled == 0
        out = session.decode(blob)
        assert explain_difference(decode(blob), out) is None
        assert session.stats.decode_plans_compiled == 1

    def test_interns_qnames_on_replay_path(self):
        session = CodecSession()
        first = session.decode(encode(_sample_doc(1)))
        second = session.decode(encode(_sample_doc(2)))  # plan replay
        assert session.stats.decode_plan_hits == 1
        assert first.children[0].name is second.children[0].name


class TestDecodeSelfVerification:
    def test_divergent_plan_poisons_fingerprint(self):
        session = CodecSession()
        blob = encode(_sample_doc())
        session.decode(blob)
        # sabotage the freshly compiled plan: swap the root element's QName
        (bucket,) = session._decode_plans.values()
        ops = bucket[0].ops
        for i, op in enumerate(ops):
            if op[0] == _D_ELEM:
                ops[i] = (op[0], QName("wrong"), op[2], op[3])
                break
        else:
            pytest.fail("no element op in the compiled plan")
        # first reuse: replay succeeds mechanically but the structure check
        # against the stateless decoder catches the divergence
        out = session.decode(blob)
        assert explain_difference(decode(blob), out) is None
        assert session.stats.decode_poisoned == 1
        assert session.stats.decode_plan_hits == 0
        # the fingerprint stays on the stateless path from here on
        out = session.decode(blob)
        assert explain_difference(decode(blob), out) is None
        assert session.stats.decode_poisoned == 1

    def test_compiler_crash_poisons_fingerprint(self, monkeypatch):
        import repro.bxsa.session as session_module

        def boom(data, offset=0, *, qname_cache=None):
            raise RuntimeError("compiler blind spot")

        monkeypatch.setattr(session_module, "compile_decode_plan", boom)
        session = CodecSession()
        blob = encode(_sample_doc())
        out = session.decode(blob)  # stateless result, poisoned fingerprint
        assert explain_difference(decode(blob), out) is None
        assert session.stats.decode_poisoned == 1
        monkeypatch.undo()
        # still stateless: a poisoned fingerprint never recompiles
        session.decode(blob)
        assert session.stats.decode_plans_compiled == 0
        assert session.stats.stateless_decodes == 2

    def test_malformed_input_raises_like_stateless(self):
        session = CodecSession()
        blob = bytes(encode(_sample_doc()))
        session.decode(blob)
        session.decode(blob)  # warm plan in place
        truncated = blob[:-3]
        with pytest.raises(BXSADecodeError):
            decode(truncated)
        with pytest.raises(BXSADecodeError):
            session.decode(truncated)

    def test_value_mutation_replays_not_poisons(self):
        # flipping payload bytes (same shape) must ride the plan, and
        # flipping structural bytes must fall back, never mis-decode
        session = CodecSession()
        blob = bytearray(encode(doc(element("root", leaf("x", 7, "int")))))
        session.decode(bytes(blob))
        session.decode(bytes(blob))
        hits = session.stats.decode_plan_hits
        blob[-1] ^= 0xFF  # last payload byte of the int leaf
        out = session.decode(bytes(blob))
        assert session.stats.decode_plan_hits == hits + 1
        assert explain_difference(decode(bytes(blob)), out) is None
        assert session.stats.decode_poisoned == 0


class TestBufferPooling:
    def test_scratch_list_is_reused(self):
        session = CodecSession()
        session.encode(_sample_doc(0))
        scratch = session._scratch
        assert scratch == []
        session.encode(_sample_doc(1))
        assert session._scratch is scratch

    def test_concurrent_takers_never_share_scratch(self):
        # simulate a second thread holding the pooled list mid-replay
        session = CodecSession()
        session.encode(_sample_doc(0))
        taken = session.__dict__.pop("_scratch")
        assert session.encode(_sample_doc(1)) == encode(_sample_doc(1))
        assert session._scratch is not taken
