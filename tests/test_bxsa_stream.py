"""Tests for streaming BXSA (event writer + pull reader)."""

import numpy as np
import pytest

from repro.bxsa import decode, encode
from repro.bxsa.errors import BXSADecodeError, BXSAEncodeError
from repro.bxsa.stream import BXSAStreamReader, BXSAStreamWriter, EventKind
from repro.xdm import QName, array, comment, deep_equal, doc, element, leaf, pi, text


def sample_document():
    return doc(
        comment("prolog"),
        element(
            "Envelope",
            element(
                "Body",
                leaf("count", 3, "int"),
                array("values", np.arange(5, dtype="f8"), item_name="v"),
                element("meta", text("hello"), attributes={"id": "m1"}),
            ),
            namespaces={"s": "urn:soap"},
        ),
    )


class TestWriter:
    def test_stream_matches_tree_encoder(self):
        """The stream writer must produce bytes the tree decoder accepts
        and that reproduce the same data model."""
        w = BXSAStreamWriter()
        w.start_document()
        w.comment("prolog")
        w.start_element("Envelope", namespaces={"s": "urn:soap"})
        w.start_element("Body")
        w.leaf("count", 3, "int")
        w.array("values", np.arange(5, dtype="f8"), item_name="v")
        w.start_element("meta", attributes={"id": "m1"})
        w.text("hello")
        w.end_element()
        w.end_element()
        w.end_element()
        blob = w.end_document()
        assert deep_equal(decode(blob), sample_document())

    def test_byte_identical_to_tree_encoder(self):
        """For the same logical document the two encoders agree bytewise."""
        tree = sample_document()
        w = BXSAStreamWriter()
        w.start_document()
        w.comment("prolog")
        w.start_element("Envelope", namespaces={"s": "urn:soap"})
        w.start_element("Body")
        w.leaf("count", 3, "int")
        w.array("values", np.arange(5, dtype="f8"), item_name="v")
        w.start_element("meta", attributes={"id": "m1"})
        w.text("hello")
        w.end_element()
        w.end_element()
        w.end_element()
        assert w.end_document() == encode(tree)

    def test_unbalanced_rejected(self):
        w = BXSAStreamWriter().start_document()
        w.start_element("a")
        with pytest.raises(BXSAEncodeError, match="open"):
            w.end_document()

    def test_end_without_start(self):
        w = BXSAStreamWriter().start_document()
        with pytest.raises(BXSAEncodeError):
            w.end_element()

    def test_content_before_document_rejected(self):
        with pytest.raises(BXSAEncodeError):
            BXSAStreamWriter().leaf("x", 1)

    def test_double_start_document(self):
        w = BXSAStreamWriter().start_document()
        with pytest.raises(BXSAEncodeError):
            w.start_document()

    def test_incremental_large_arrays_bounded_buffering(self):
        """Chunks accumulate; payload views are not copied per level."""
        w = BXSAStreamWriter().start_document()
        w.start_element("batches")
        blocks = [np.full(10_000, i, dtype="f8") for i in range(5)]
        for i, block in enumerate(blocks):
            w.array(f"b{i}", block)
        w.end_element()
        out = decode(w.end_document())
        for i, child in enumerate(out.root.elements()):
            np.testing.assert_array_equal(np.asarray(child.values), blocks[i])


class TestReader:
    def test_event_sequence(self):
        blob = encode(sample_document())
        kinds = [e.kind for e in BXSAStreamReader(blob)]
        assert kinds == [
            EventKind.START_DOCUMENT,
            EventKind.COMMENT,
            EventKind.START_ELEMENT,  # Envelope
            EventKind.START_ELEMENT,  # Body
            EventKind.LEAF,
            EventKind.ARRAY,
            EventKind.START_ELEMENT,  # meta
            EventKind.TEXT,
            EventKind.END_ELEMENT,
            EventKind.END_ELEMENT,
            EventKind.END_ELEMENT,
            EventKind.END_DOCUMENT,
        ]

    def test_event_payloads(self):
        blob = encode(sample_document())
        events = list(BXSAStreamReader(blob))
        leaf_event = next(e for e in events if e.kind is EventKind.LEAF)
        assert leaf_event.name.local == "count"
        assert leaf_event.value == 3
        assert leaf_event.atype.xsd_name == "int"
        array_event = next(e for e in events if e.kind is EventKind.ARRAY)
        np.testing.assert_array_equal(np.asarray(array_event.values), np.arange(5.0))
        assert array_event.item_name == "v"
        start_meta = [e for e in events if e.kind is EventKind.START_ELEMENT][-1]
        assert start_meta.attributes[0].value == "m1"

    def test_depths(self):
        blob = encode(sample_document())
        events = list(BXSAStreamReader(blob))
        leaf_event = next(e for e in events if e.kind is EventKind.LEAF)
        assert leaf_event.depth == 2  # under Envelope/Body

    def test_namespace_resolution_through_scopes(self):
        inner = element(QName("c", "urn:x", "p"))
        tree = element(QName("r", "urn:x", "p"), inner, namespaces={"p": "urn:x"})
        events = list(BXSAStreamReader(encode(tree)))
        starts = [e for e in events if e.kind is EventKind.START_ELEMENT]
        assert [s.name.uri for s in starts] == ["urn:x", "urn:x"]

    def test_empty_element_events(self):
        blob = encode(element("solo"))
        kinds = [e.kind for e in BXSAStreamReader(blob)]
        assert kinds == [EventKind.START_ELEMENT, EventKind.END_ELEMENT]

    def test_bare_leaf_frame(self):
        blob = encode(leaf("x", 2.5))
        events = list(BXSAStreamReader(blob))
        assert len(events) == 1
        assert events[0].value == 2.5

    def test_pi_event(self):
        blob = encode(element("r", pi("tgt", "data")))
        pi_event = [e for e in BXSAStreamReader(blob)][1]
        assert pi_event.kind is EventKind.PI
        assert pi_event.target == "tgt"
        assert pi_event.text == "data"

    def test_truncated_stream_detected(self):
        blob = encode(sample_document())
        with pytest.raises(BXSADecodeError):
            list(BXSAStreamReader(blob[: len(blob) - 3]))

    def test_arrays_are_zero_copy(self):
        blob = encode(element("r", array("v", np.arange(1000, dtype="f8"))))
        array_event = next(
            e for e in BXSAStreamReader(blob) if e.kind is EventKind.ARRAY
        )
        assert array_event.values.base is not None


class TestStreamingUseCases:
    def test_bounded_memory_aggregation(self):
        """Sum a multi-megabyte message array-by-array, never building the
        tree — the streaming consumption pattern the paper's scanner and
        XBS heritage enable."""
        w = BXSAStreamWriter().start_document()
        w.start_element("readings")
        expected = 0.0
        for i in range(20):
            block = np.arange(i, i + 5000, dtype="f8")
            expected += float(block.sum())
            w.array(f"r{i}", block)
        w.end_element()
        blob = w.end_document()

        total = sum(
            float(e.values.sum())
            for e in BXSAStreamReader(blob)
            if e.kind is EventKind.ARRAY
        )
        assert total == expected

    def test_writer_reader_round_trip_via_events(self):
        """Replaying a reader's events through a writer reproduces the
        document (event-level transcoding)."""
        original = encode(sample_document())
        w = BXSAStreamWriter()
        for event in BXSAStreamReader(original):
            if event.kind is EventKind.START_DOCUMENT:
                w.start_document()
            elif event.kind is EventKind.END_DOCUMENT:
                replayed = w.end_document()
            elif event.kind is EventKind.START_ELEMENT:
                w.start_element(
                    event.name,
                    attributes={a.name: a.value for a in event.attributes} or None,
                    namespaces={n.prefix: n.uri for n in event.namespaces} or None,
                )
            elif event.kind is EventKind.END_ELEMENT:
                w.end_element()
            elif event.kind is EventKind.LEAF:
                w.leaf(event.name, event.value, event.atype)
            elif event.kind is EventKind.ARRAY:
                w.array(event.name, event.values, event.atype, item_name=event.item_name)
            elif event.kind is EventKind.TEXT:
                w.text(event.text)
            elif event.kind is EventKind.COMMENT:
                w.comment(event.text)
            elif event.kind is EventKind.PI:
                w.pi(event.target, event.text)
        assert deep_equal(decode(replayed), decode(original))


class TestAdversarialTruncation:
    """Frames whose Size field lies must fail loudly, never read beyond
    their own end (the seed validated the array pad byte against the whole
    buffer, so a truncated Size silently consumed the next frame's bytes)."""

    def bare_array_blob(self) -> bytes:
        return bytes(encode(array("v", np.arange(2, dtype="f8"))))

    def truncate_size(self, blob: bytes, new_size: int) -> bytes:
        # single-byte VLS Size sits right after the one prefix byte
        assert blob[1] < 0x80, "fixture assumes a single-byte Size"
        return blob[:1] + bytes([new_size]) + blob[2:]

    def test_stream_reader_rejects_pad_byte_outside_frame(self):
        blob = self.bare_array_blob()
        # shrink Size so the frame ends exactly where the pad byte sits;
        # the pad position is still inside the *buffer* (trailing bytes
        # remain), which is what fooled the len(data) check
        bad = self.truncate_size(blob, 8)
        with pytest.raises(BXSADecodeError, match="truncated array frame"):
            list(BXSAStreamReader(bad))

    def test_tree_decoder_rejects_pad_byte_outside_frame(self):
        from repro.bxsa import decode

        bad = self.truncate_size(self.bare_array_blob(), 8)
        with pytest.raises(BXSADecodeError, match="truncated array frame"):
            decode(bad)

    def test_array_payload_must_stay_inside_frame(self):
        blob = self.bare_array_blob()
        # leave room for the pad byte but not the 16-byte payload
        bad = self.truncate_size(blob, 12)
        with pytest.raises(BXSADecodeError, match="overruns its frame"):
            list(BXSAStreamReader(bad))

    def test_child_overrunning_container_fails_before_yielding(self):
        """A child frame whose Size spills past its enclosing frame's end
        must raise *before* the event is handed to the consumer — a pull
        parser that has already yielded cannot take the event back."""
        blob = bytearray(encode(doc(element("r", leaf("x", 1, "int")))))
        # find the leaf frame: document prefix+size+count, element
        # prefix+size+header+count, then the leaf's prefix and Size bytes
        from repro.bxsa.frames import (
            read_frame_prefix,
            read_name_ref,
            read_string,
            read_vls,
        )

        _, _, body, _ = read_frame_prefix(blob, 0)
        _, p = read_vls(blob, body)  # document child count
        _, _, ebody, _ = read_frame_prefix(blob, p)
        _, q = read_vls(blob, ebody)  # element: n namespaces
        _, _, q = read_name_ref(blob, q)
        _, q = read_string(blob, q)
        _, q = read_vls(blob, q)  # n attributes
        _, q = read_vls(blob, q)  # element child count
        assert blob[q + 1] < 0x7F
        blob[q + 1] += 1  # inflate the leaf's Size past its container
        bad = bytes(blob) + b"\x00" * 8  # keep the lie inside the buffer

        events = []
        with pytest.raises(BXSADecodeError, match="overrunning its enclosing"):
            for event in BXSAStreamReader(bad):
                events.append(event.kind)
        assert EventKind.LEAF not in events

    def test_honest_truncation_still_detected(self):
        blob = self.bare_array_blob()
        with pytest.raises(BXSADecodeError):
            list(BXSAStreamReader(blob[:-3]))
