"""Tests for streaming BXSA (event writer + pull reader)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bxsa import decode, encode
from repro.bxsa.errors import BXSADecodeError, BXSAEncodeError
from repro.bxsa.stream import (
    BXSAStreamReader,
    BXSAStreamWriter,
    EventKind,
    StreamDecoder,
    write_document,
)
from repro.xdm import QName, array, comment, deep_equal, doc, element, leaf, pi, text

from tests.strategies import documents


def sample_document():
    return doc(
        comment("prolog"),
        element(
            "Envelope",
            element(
                "Body",
                leaf("count", 3, "int"),
                array("values", np.arange(5, dtype="f8"), item_name="v"),
                element("meta", text("hello"), attributes={"id": "m1"}),
            ),
            namespaces={"s": "urn:soap"},
        ),
    )


class TestWriter:
    def test_stream_matches_tree_encoder(self):
        """The stream writer must produce bytes the tree decoder accepts
        and that reproduce the same data model."""
        w = BXSAStreamWriter()
        w.start_document()
        w.comment("prolog")
        w.start_element("Envelope", namespaces={"s": "urn:soap"})
        w.start_element("Body")
        w.leaf("count", 3, "int")
        w.array("values", np.arange(5, dtype="f8"), item_name="v")
        w.start_element("meta", attributes={"id": "m1"})
        w.text("hello")
        w.end_element()
        w.end_element()
        w.end_element()
        blob = w.end_document()
        assert deep_equal(decode(blob), sample_document())

    def test_byte_identical_to_tree_encoder(self):
        """For the same logical document the two encoders agree bytewise."""
        tree = sample_document()
        w = BXSAStreamWriter()
        w.start_document()
        w.comment("prolog")
        w.start_element("Envelope", namespaces={"s": "urn:soap"})
        w.start_element("Body")
        w.leaf("count", 3, "int")
        w.array("values", np.arange(5, dtype="f8"), item_name="v")
        w.start_element("meta", attributes={"id": "m1"})
        w.text("hello")
        w.end_element()
        w.end_element()
        w.end_element()
        assert w.end_document() == encode(tree)

    def test_unbalanced_rejected(self):
        w = BXSAStreamWriter().start_document()
        w.start_element("a")
        with pytest.raises(BXSAEncodeError, match="open"):
            w.end_document()

    def test_end_without_start(self):
        w = BXSAStreamWriter().start_document()
        with pytest.raises(BXSAEncodeError):
            w.end_element()

    def test_content_before_document_rejected(self):
        with pytest.raises(BXSAEncodeError):
            BXSAStreamWriter().leaf("x", 1)

    def test_double_start_document(self):
        w = BXSAStreamWriter().start_document()
        with pytest.raises(BXSAEncodeError):
            w.start_document()

    def test_incremental_large_arrays_bounded_buffering(self):
        """Chunks accumulate; payload views are not copied per level."""
        w = BXSAStreamWriter().start_document()
        w.start_element("batches")
        blocks = [np.full(10_000, i, dtype="f8") for i in range(5)]
        for i, block in enumerate(blocks):
            w.array(f"b{i}", block)
        w.end_element()
        out = decode(w.end_document())
        for i, child in enumerate(out.root.elements()):
            np.testing.assert_array_equal(np.asarray(child.values), blocks[i])


class TestReader:
    def test_event_sequence(self):
        blob = encode(sample_document())
        kinds = [e.kind for e in BXSAStreamReader(blob)]
        assert kinds == [
            EventKind.START_DOCUMENT,
            EventKind.COMMENT,
            EventKind.START_ELEMENT,  # Envelope
            EventKind.START_ELEMENT,  # Body
            EventKind.LEAF,
            EventKind.ARRAY,
            EventKind.START_ELEMENT,  # meta
            EventKind.TEXT,
            EventKind.END_ELEMENT,
            EventKind.END_ELEMENT,
            EventKind.END_ELEMENT,
            EventKind.END_DOCUMENT,
        ]

    def test_event_payloads(self):
        blob = encode(sample_document())
        events = list(BXSAStreamReader(blob))
        leaf_event = next(e for e in events if e.kind is EventKind.LEAF)
        assert leaf_event.name.local == "count"
        assert leaf_event.value == 3
        assert leaf_event.atype.xsd_name == "int"
        array_event = next(e for e in events if e.kind is EventKind.ARRAY)
        np.testing.assert_array_equal(np.asarray(array_event.values), np.arange(5.0))
        assert array_event.item_name == "v"
        start_meta = [e for e in events if e.kind is EventKind.START_ELEMENT][-1]
        assert start_meta.attributes[0].value == "m1"

    def test_depths(self):
        blob = encode(sample_document())
        events = list(BXSAStreamReader(blob))
        leaf_event = next(e for e in events if e.kind is EventKind.LEAF)
        assert leaf_event.depth == 2  # under Envelope/Body

    def test_namespace_resolution_through_scopes(self):
        inner = element(QName("c", "urn:x", "p"))
        tree = element(QName("r", "urn:x", "p"), inner, namespaces={"p": "urn:x"})
        events = list(BXSAStreamReader(encode(tree)))
        starts = [e for e in events if e.kind is EventKind.START_ELEMENT]
        assert [s.name.uri for s in starts] == ["urn:x", "urn:x"]

    def test_empty_element_events(self):
        blob = encode(element("solo"))
        kinds = [e.kind for e in BXSAStreamReader(blob)]
        assert kinds == [EventKind.START_ELEMENT, EventKind.END_ELEMENT]

    def test_bare_leaf_frame(self):
        blob = encode(leaf("x", 2.5))
        events = list(BXSAStreamReader(blob))
        assert len(events) == 1
        assert events[0].value == 2.5

    def test_pi_event(self):
        blob = encode(element("r", pi("tgt", "data")))
        pi_event = [e for e in BXSAStreamReader(blob)][1]
        assert pi_event.kind is EventKind.PI
        assert pi_event.target == "tgt"
        assert pi_event.text == "data"

    def test_truncated_stream_detected(self):
        blob = encode(sample_document())
        with pytest.raises(BXSADecodeError):
            list(BXSAStreamReader(blob[: len(blob) - 3]))

    def test_arrays_are_zero_copy(self):
        blob = encode(element("r", array("v", np.arange(1000, dtype="f8"))))
        array_event = next(
            e for e in BXSAStreamReader(blob) if e.kind is EventKind.ARRAY
        )
        assert array_event.values.base is not None


class TestStreamingUseCases:
    def test_bounded_memory_aggregation(self):
        """Sum a multi-megabyte message array-by-array, never building the
        tree — the streaming consumption pattern the paper's scanner and
        XBS heritage enable."""
        w = BXSAStreamWriter().start_document()
        w.start_element("readings")
        expected = 0.0
        for i in range(20):
            block = np.arange(i, i + 5000, dtype="f8")
            expected += float(block.sum())
            w.array(f"r{i}", block)
        w.end_element()
        blob = w.end_document()

        total = sum(
            float(e.values.sum())
            for e in BXSAStreamReader(blob)
            if e.kind is EventKind.ARRAY
        )
        assert total == expected

    def test_writer_reader_round_trip_via_events(self):
        """Replaying a reader's events through a writer reproduces the
        document (event-level transcoding)."""
        original = encode(sample_document())
        w = BXSAStreamWriter()
        for event in BXSAStreamReader(original):
            if event.kind is EventKind.START_DOCUMENT:
                w.start_document()
            elif event.kind is EventKind.END_DOCUMENT:
                replayed = w.end_document()
            elif event.kind is EventKind.START_ELEMENT:
                w.start_element(
                    event.name,
                    attributes={a.name: a.value for a in event.attributes} or None,
                    namespaces={n.prefix: n.uri for n in event.namespaces} or None,
                )
            elif event.kind is EventKind.END_ELEMENT:
                w.end_element()
            elif event.kind is EventKind.LEAF:
                w.leaf(event.name, event.value, event.atype)
            elif event.kind is EventKind.ARRAY:
                w.array(event.name, event.values, event.atype, item_name=event.item_name)
            elif event.kind is EventKind.TEXT:
                w.text(event.text)
            elif event.kind is EventKind.COMMENT:
                w.comment(event.text)
            elif event.kind is EventKind.PI:
                w.pi(event.target, event.text)
        assert deep_equal(decode(replayed), decode(original))


class TestAdversarialTruncation:
    """Frames whose Size field lies must fail loudly, never read beyond
    their own end (the seed validated the array pad byte against the whole
    buffer, so a truncated Size silently consumed the next frame's bytes)."""

    def bare_array_blob(self) -> bytes:
        return bytes(encode(array("v", np.arange(2, dtype="f8"))))

    def truncate_size(self, blob: bytes, new_size: int) -> bytes:
        # single-byte VLS Size sits right after the one prefix byte
        assert blob[1] < 0x80, "fixture assumes a single-byte Size"
        return blob[:1] + bytes([new_size]) + blob[2:]

    def test_stream_reader_rejects_pad_byte_outside_frame(self):
        blob = self.bare_array_blob()
        # shrink Size so the frame ends exactly where the pad byte sits;
        # the pad position is still inside the *buffer* (trailing bytes
        # remain), which is what fooled the len(data) check
        bad = self.truncate_size(blob, 8)
        with pytest.raises(BXSADecodeError, match="truncated array frame"):
            list(BXSAStreamReader(bad))

    def test_tree_decoder_rejects_pad_byte_outside_frame(self):
        from repro.bxsa import decode

        bad = self.truncate_size(self.bare_array_blob(), 8)
        with pytest.raises(BXSADecodeError, match="truncated array frame"):
            decode(bad)

    def test_array_payload_must_stay_inside_frame(self):
        blob = self.bare_array_blob()
        # leave room for the pad byte but not the 16-byte payload
        bad = self.truncate_size(blob, 12)
        with pytest.raises(BXSADecodeError, match="overruns its frame"):
            list(BXSAStreamReader(bad))

    def test_child_overrunning_container_fails_before_yielding(self):
        """A child frame whose Size spills past its enclosing frame's end
        must raise *before* the event is handed to the consumer — a pull
        parser that has already yielded cannot take the event back."""
        blob = bytearray(encode(doc(element("r", leaf("x", 1, "int")))))
        # find the leaf frame: document prefix+size+count, element
        # prefix+size+header+count, then the leaf's prefix and Size bytes
        from repro.bxsa.frames import (
            read_frame_prefix,
            read_name_ref,
            read_string,
            read_vls,
        )

        _, _, body, _ = read_frame_prefix(blob, 0)
        _, p = read_vls(blob, body)  # document child count
        _, _, ebody, _ = read_frame_prefix(blob, p)
        _, q = read_vls(blob, ebody)  # element: n namespaces
        _, _, q = read_name_ref(blob, q)
        _, q = read_string(blob, q)
        _, q = read_vls(blob, q)  # n attributes
        _, q = read_vls(blob, q)  # element child count
        assert blob[q + 1] < 0x7F
        blob[q + 1] += 1  # inflate the leaf's Size past its container
        bad = bytes(blob) + b"\x00" * 8  # keep the lie inside the buffer

        events = []
        with pytest.raises(BXSADecodeError, match="overrunning its enclosing"):
            for event in BXSAStreamReader(bad):
                events.append(event.kind)
        assert EventKind.LEAF not in events

    def test_honest_truncation_still_detected(self):
        blob = self.bare_array_blob()
        with pytest.raises(BXSADecodeError):
            list(BXSAStreamReader(blob[:-3]))


def _event_key(event):
    """An event as comparable values (AttributeNode has no __eq__)."""
    values = None
    if event.values is not None:
        values = (event.values.dtype.str, event.values.tobytes())
    return (
        event.kind,
        event.name,
        tuple((a.name, getattr(a.atype, "code", None), a.value) for a in event.attributes),
        tuple((n.prefix, n.uri) for n in event.namespaces),
        event.value,
        values,
        getattr(event.atype, "code", event.atype),
        event.item_name,
        event.text,
        event.target,
        event.depth,
        event.count,
        event.item_offset,
    )


def _decode_events(blob, pieces=None):
    decoder = StreamDecoder()
    events = []
    for piece in pieces if pieces is not None else (blob,):
        events.extend(decoder.feed(piece))
    decoder.close()
    return [_event_key(e) for e in events]


class TestStreamedProfileProperties:
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(document=documents())
    def test_buffered_write_document_byte_identical(self, document):
        """Driving the buffered writer from any bXDM tree reproduces the
        tree encoder's bytes exactly — not just an equivalent document."""
        assert write_document(BXSAStreamWriter(), document) == encode(document)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(document=documents(), chunk=st.integers(min_value=16, max_value=4096))
    def test_sink_pieces_decode_to_identical_events(self, document, chunk):
        """The sink-driven writer's pieces, rejoined, yield the *same
        event stream* as the tree encoder's bytes — the streamed container
        profile changes framing, never content — at any flush chunk size."""
        pieces = []
        writer = BXSAStreamWriter(sink=lambda p: pieces.append(bytes(p)), chunk_size=chunk)
        assert write_document(writer, document) == b""
        streamed = b"".join(pieces)
        assert _decode_events(streamed) == _decode_events(encode(document))

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(document=documents(), chunk=st.integers(min_value=1, max_value=64), profile=st.booleans())
    def test_incremental_feed_chunking_is_invisible(self, document, chunk, profile):
        """Feeding either profile's bytes in arbitrary small pieces yields
        exactly the single-shot event stream."""
        if profile:
            pieces = []
            writer = BXSAStreamWriter(sink=pieces.append, chunk_size=512)
            write_document(writer, document)
            blob = b"".join(bytes(p) for p in pieces)
        else:
            blob = encode(document)
        split = [blob[i : i + chunk] for i in range(0, len(blob), chunk)]
        assert _decode_events(blob, split) == _decode_events(blob)


class TestChunkBoundaryFuzz:
    def test_every_split_offset_yields_identical_events(self):
        """Exhaustive two-piece boundary fuzz of the incremental decoder,
        in both container profiles: no offset may change the events."""
        document = sample_document()
        pieces = []
        writer = BXSAStreamWriter(sink=pieces.append, chunk_size=64)
        write_document(writer, document)
        for blob in (encode(document), b"".join(bytes(p) for p in pieces)):
            expected = _decode_events(blob)
            for offset in range(len(blob) + 1):
                got = _decode_events(blob, (blob[:offset], blob[offset:]))
                assert got == expected, f"events diverged splitting at {offset}"


class TestZeroCopyAliasing:
    def test_reader_array_views_alias_the_input_buffer(self):
        """BXSAStreamReader array payloads are memoryview-backed views of
        the caller's buffer — same memory, not a copy."""
        payload = np.arange(4096, dtype="f8")
        blob = encode(element("r", array("v", payload)))
        raw = np.frombuffer(blob, dtype=np.uint8)
        event = next(e for e in BXSAStreamReader(blob) if e.kind is EventKind.ARRAY)
        assert np.shares_memory(event.values, raw)
        assert event.values.dtype == payload.dtype
        np.testing.assert_array_equal(event.values, payload)

    def test_reader_accepts_memoryview_input_zero_copy(self):
        payload = np.arange(1024, dtype="i4")
        backing = bytearray(encode(element("r", array("v", payload))))
        view = memoryview(backing)
        event = next(e for e in BXSAStreamReader(view) if e.kind is EventKind.ARRAY)
        assert np.shares_memory(event.values, np.frombuffer(backing, dtype=np.uint8))
        np.testing.assert_array_equal(event.values, payload)
