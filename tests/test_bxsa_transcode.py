"""Transcodability tests (§4.2): BXSA ↔ textual XML conversions."""

import numpy as np

from repro.bxsa import bxsa_to_xml, decode, encode, xml_to_bxsa
from repro.xdm import array, deep_equal, doc, element, explain_difference, leaf, text
from repro.xmlcodec import parse_document


class TestBinaryToTextToBinary:
    """binary → text → binary must reproduce the original data model."""

    def assert_stable(self, tree):
        blob = encode(tree)
        xml = bxsa_to_xml(blob)
        blob2 = xml_to_bxsa(xml)
        out = decode(blob2)
        diff = explain_difference(tree, out, ignore_ns_decls=True)
        assert diff is None, f"{diff}\nXML: {xml[:400]}"

    def test_typed_payload(self):
        self.assert_stable(
            doc(
                element(
                    "data",
                    leaf("n", 42, "int"),
                    leaf("x", 0.1 + 0.2, "double"),
                    array("v", np.linspace(0, 1, 9)),
                )
            )
        )

    def test_floats_survive_full_precision(self):
        """The paper: floats are "converted to full precision" on the text
        leg, so the binary value is preserved exactly."""
        rng = np.random.default_rng(7)
        values = rng.random(200) * 10.0 ** rng.integers(-300, 300, 200)
        self.assert_stable(doc(element("d", array("v", values))))

    def test_mixed_content(self):
        self.assert_stable(
            doc(element("r", text("pre"), leaf("x", 1, "int"), text("post")))
        )


class TestTextToBinaryToText:
    """text → binary → text must reproduce the text (modulo the paper's
    float-precision caveat, avoided here by using canonical float forms)."""

    def assert_stable(self, xml):
        blob = xml_to_bxsa(xml)
        xml2 = bxsa_to_xml(blob)
        # one more leg must be a fixpoint
        assert bxsa_to_xml(xml_to_bxsa(xml2)) == xml2
        # and the data models must agree
        assert deep_equal(
            parse_document(xml), parse_document(xml2), ignore_ns_decls=True
        )

    def test_plain_document(self):
        self.assert_stable("<r><a>text</a><b attr='v'/><!--c--></r>")

    def test_typed_document(self):
        xsi = 'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
        xsd = 'xmlns:xsd="http://www.w3.org/2001/XMLSchema"'
        self.assert_stable(f'<r {xsi} {xsd}><n xsi:type="xsd:int">5</n></r>')

    def test_namespaced_document(self):
        self.assert_stable('<s:Envelope xmlns:s="urn:soap"><s:Body>x</s:Body></s:Envelope>')

    def test_non_canonical_float_rewritten(self):
        """'1.50' becomes '1.5' — the documented full-precision caveat."""
        xsi = 'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
        xsd = 'xmlns:xsd="http://www.w3.org/2001/XMLSchema"'
        xml = f'<n {xsi} {xsd} xsi:type="xsd:double">1.50</n>'
        xml2 = bxsa_to_xml(xml_to_bxsa(xml))
        assert ">1.5</n>" in xml2
        # and the value is unchanged
        assert parse_document(xml2).root.value == 1.5


class TestUntypedTranscodeCaveat:
    def test_untyped_leg_degrades_types(self):
        """Without xsi:type on the text leg, typed nodes cannot be rebuilt
        (the paper's schema-unavailable caveat)."""
        tree = doc(element("r", leaf("n", 5, "int")))
        xml = bxsa_to_xml(encode(tree), emit_types=False)
        rebuilt = decode(xml_to_bxsa(xml))
        child = next(rebuilt.root.elements())
        from repro.xdm import LeafElement

        assert not isinstance(child, LeafElement)
        assert child.text_content() == "5"
