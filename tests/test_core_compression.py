"""Tests for the deflate encoding-policy decorator and the content-type
registry."""

import numpy as np
import pytest

from repro.core import (
    BXSAEncoding,
    DeflateEncoding,
    SoapEnvelope,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
    encoding_for_content_type,
    register_content_type,
)
from repro.services import echo_dispatcher
from repro.transport import MemoryNetwork
from repro.workloads.lead import lead_dataset
from repro.xdm import array, deep_equal, element, leaf
from repro.xdm.path import children_named


class TestDeflateEncoding:
    @pytest.mark.parametrize("inner_cls", [XMLEncoding, BXSAEncoding])
    def test_roundtrip(self, inner_cls):
        encoding = DeflateEncoding(inner_cls())
        env = SoapEnvelope.wrap(element("Op", array("v", np.arange(100.0))))
        doc = env.to_document()
        back = encoding.decode(encoding.encode(doc))
        assert deep_equal(
            SoapEnvelope.from_document(back).body_root, env.body_root, ignore_ns_decls=True
        )

    def test_content_type_suffix(self):
        assert DeflateEncoding(XMLEncoding()).content_type == "text/xml+deflate"
        assert DeflateEncoding(BXSAEncoding()).content_type == "application/bxsa+deflate"

    def test_compresses_xml_well(self):
        doc = lead_dataset(2000).to_document()
        plain = len(XMLEncoding().encode(doc))
        squeezed = len(DeflateEncoding(XMLEncoding()).encode(doc))
        assert squeezed < plain / 2

    def test_barely_helps_bxsa(self):
        """Packed full-entropy doubles have no syntactic redundancy: the
        paper's point that compression is no substitute for typed binary."""
        values = np.random.default_rng(1).random(2000)
        doc = SoapEnvelope.wrap(element("Op", array("v", values))).to_document()
        plain = len(BXSAEncoding().encode(doc))
        squeezed = len(DeflateEncoding(BXSAEncoding()).encode(doc))
        assert squeezed > plain * 0.8  # nowhere near XML's factor

    def test_deflated_xml_still_larger_than_logic_suggests(self):
        """Even compressed, the XML leg keeps its conversion CPU; sizes may
        rival BXSA but the decode path still goes through text."""
        doc = lead_dataset(500).to_document()
        assert len(DeflateEncoding(XMLEncoding()).encode(doc)) > 0  # smoke

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            DeflateEncoding(XMLEncoding()).decode(b"not deflate data")

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            DeflateEncoding(XMLEncoding(), level=17)


class TestRegistry:
    def test_shipped_types_present(self):
        assert isinstance(encoding_for_content_type("text/xml"), XMLEncoding)
        assert isinstance(encoding_for_content_type("application/bxsa"), BXSAEncoding)

    def test_register_and_resolve(self):
        DeflateEncoding(BXSAEncoding()).register()
        policy = encoding_for_content_type("application/bxsa+deflate")
        assert isinstance(policy, DeflateEncoding)

    def test_custom_factory(self):
        class Weird:
            content_type = "application/x-weird"

            def encode(self, doc):
                return b"w"

            def decode(self, payload):
                raise NotImplementedError

        register_content_type("application/x-weird", Weird)
        assert isinstance(encoding_for_content_type("application/x-weird"), Weird)


class TestCompressedExchange:
    def test_end_to_end_deflated_xml(self):
        """A deflate-XML client against a negotiating server."""
        DeflateEncoding(XMLEncoding()).register()
        net = MemoryNetwork()
        with SoapTcpService(net.listen("z"), echo_dispatcher()):
            client = SoapTcpClient(
                lambda: net.connect("z"), encoding=DeflateEncoding(XMLEncoding())
            )
            response = client.call(
                SoapEnvelope.wrap(element("Echo", leaf("n", 9, "int")))
            )
            assert children_named(response.body_root, "n")[0].value == 9
            client.close()
