"""Integration tests: the generic SOAP engine over every policy combination."""

import numpy as np
import pytest

from repro.core import (
    BXSAEncoding,
    Dispatcher,
    ServiceProxy,
    SoapEnvelope,
    SoapFault,
    SoapHttpClient,
    SoapHttpService,
    SoapTcpClient,
    SoapTcpService,
    TcpIntermediary,
    XMLEncoding,
)
from repro.transport import MemoryNetwork
from repro.xdm import ArrayElement, array, element, leaf
from repro.xdm.path import children_named


def make_dispatcher() -> Dispatcher:
    d = Dispatcher()

    @d.operation("Echo")
    def echo(request: SoapEnvelope):
        return element("EchoResponse", *request.body_root.children)

    @d.operation("Sum")
    def total(request: SoapEnvelope):
        values = children_named(request.body_root, "values")[0].values
        return element("SumResponse", leaf("total", float(values.sum()), "double"))

    @d.operation("Fail")
    def fail(request: SoapEnvelope):
        raise SoapFault("soap:Server", "deliberate failure", "details here")

    @d.operation("Crash")
    def crash(request: SoapEnvelope):
        raise RuntimeError("unexpected bug")

    return d


ENCODINGS = [XMLEncoding, BXSAEncoding]


class TestTcpService:
    def setup_method(self):
        self.net = MemoryNetwork()
        self.service = SoapTcpService(self.net.listen("svc"), make_dispatcher()).start()

    def teardown_method(self):
        self.service.stop()

    def client(self, encoding_cls):
        return SoapTcpClient(lambda: self.net.connect("svc"), encoding=encoding_cls())

    @pytest.mark.parametrize("encoding_cls", ENCODINGS)
    def test_echo_roundtrip(self, encoding_cls):
        client = self.client(encoding_cls)
        request = SoapEnvelope.wrap(
            element("Echo", leaf("n", 7, "int"), array("v", np.arange(5.0)))
        )
        response = client.call(request)
        root = response.body_root
        assert root.name.local == "EchoResponse"
        assert children_named(root, "n")[0].value == 7
        np.testing.assert_array_equal(
            np.asarray(children_named(root, "v")[0].values), np.arange(5.0)
        )
        client.close()

    @pytest.mark.parametrize("encoding_cls", ENCODINGS)
    def test_typed_computation(self, encoding_cls):
        client = self.client(encoding_cls)
        request = SoapEnvelope.wrap(element("Sum", array("values", np.arange(100.0))))
        response = client.call(request)
        assert children_named(response.body_root, "total")[0].value == float(
            np.arange(100.0).sum()
        )
        client.close()

    @pytest.mark.parametrize("encoding_cls", ENCODINGS)
    def test_fault_propagates(self, encoding_cls):
        client = self.client(encoding_cls)
        with pytest.raises(SoapFault) as info:
            client.call(SoapEnvelope.wrap(element("Fail")))
        assert info.value.code == "soap:Server"
        assert info.value.string == "deliberate failure"
        assert info.value.detail == "details here"
        client.close()

    def test_unexpected_exception_becomes_fault(self):
        client = self.client(XMLEncoding)
        with pytest.raises(SoapFault, match="RuntimeError"):
            client.call(SoapEnvelope.wrap(element("Crash")))
        client.close()

    def test_unknown_operation_is_client_fault(self):
        client = self.client(XMLEncoding)
        with pytest.raises(SoapFault, match="no such operation"):
            client.call(SoapEnvelope.wrap(element("Nope")))
        client.close()

    def test_mixed_encoding_clients_one_server(self):
        """The same server answers XML and BXSA clients, each in kind."""
        xml_client = self.client(XMLEncoding)
        bxsa_client = self.client(BXSAEncoding)
        for client in (xml_client, bxsa_client):
            resp = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 1, "int"))))
            assert resp.body_root.name.local == "EchoResponse"
        xml_client.close()
        bxsa_client.close()

    def test_persistent_connection_many_calls(self):
        client = self.client(BXSAEncoding)
        for i in range(20):
            resp = client.call(SoapEnvelope.wrap(element("Echo", leaf("i", i, "int"))))
            assert children_named(resp.body_root, "i")[0].value == i
        client.close()

    def test_zero_copy_arrays_on_receive(self):
        """BXSA decode hands back views over the received buffer."""
        client = self.client(BXSAEncoding)
        resp = client.call(
            SoapEnvelope.wrap(element("Echo", array("v", np.arange(1000.0))))
        )
        arr_node = children_named(resp.body_root, "v")[0]
        assert isinstance(arr_node, ArrayElement)
        assert arr_node.values.base is not None  # a view, not a copy
        client.close()


class TestHttpService:
    def setup_method(self):
        self.net = MemoryNetwork()
        self.service = SoapHttpService(self.net.listen("web"), make_dispatcher()).start()

    def teardown_method(self):
        self.service.stop()

    def client(self, encoding_cls):
        return SoapHttpClient(lambda: self.net.connect("web"), encoding=encoding_cls())

    @pytest.mark.parametrize("encoding_cls", ENCODINGS)
    def test_echo_over_http(self, encoding_cls):
        client = self.client(encoding_cls)
        resp = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 2.5, "double"))))
        assert children_named(resp.body_root, "x")[0].value == 2.5
        client.close()

    @pytest.mark.parametrize("encoding_cls", ENCODINGS)
    def test_fault_over_http_rides_500(self, encoding_cls):
        client = self.client(encoding_cls)
        with pytest.raises(SoapFault, match="deliberate"):
            client.call(SoapEnvelope.wrap(element("Fail")))
        client.close()

    def test_wrong_endpoint_404(self):
        from repro.transport import TransportError

        client = SoapHttpClient(lambda: self.net.connect("web"), target="/other")
        with pytest.raises(TransportError):
            client.call(SoapEnvelope.wrap(element("Echo")))
        client.close()


class TestProxy:
    def test_invoke_sugar(self):
        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), make_dispatcher()):
            proxy = ServiceProxy(
                SoapTcpClient(lambda: net.connect("svc"), encoding=BXSAEncoding())
            )
            result = proxy.invoke("Sum", array("values", np.array([1.0, 2.0, 3.0])))
            assert result.name.local == "SumResponse"
            assert children_named(result, "total")[0].value == 6.0
            proxy.close()


class TestIntermediary:
    def test_xml_clients_bxsa_backbone(self):
        """Clients speak XML; the inter-hop protocol is BXSA (§5.1)."""
        net = MemoryNetwork()
        backend = SoapTcpService(
            net.listen("backend"), make_dispatcher(), encoding=BXSAEncoding()
        ).start()
        hop = TcpIntermediary(
            net.listen("front"),
            lambda: net.connect("backend"),
            inbound_encoding=XMLEncoding(),
            outbound_encoding=BXSAEncoding(),
        ).start()
        try:
            client = SoapTcpClient(lambda: net.connect("front"), encoding=XMLEncoding())
            request = SoapEnvelope.wrap(element("Echo", array("v", np.arange(16.0))))
            response = client.call(request)
            np.testing.assert_array_equal(
                np.asarray(children_named(response.body_root, "v")[0].values),
                np.arange(16.0),
            )
            assert hop.forwarded == 1
            client.close()
        finally:
            hop.stop()
            backend.stop()

    def test_fault_relayed_through_hop(self):
        net = MemoryNetwork()
        backend = SoapTcpService(net.listen("backend"), make_dispatcher()).start()
        hop = TcpIntermediary(
            net.listen("front"),
            lambda: net.connect("backend"),
            inbound_encoding=BXSAEncoding(),
            outbound_encoding=XMLEncoding(),
        ).start()
        try:
            client = SoapTcpClient(lambda: net.connect("front"), encoding=BXSAEncoding())
            with pytest.raises(SoapFault, match="deliberate"):
                client.call(SoapEnvelope.wrap(element("Fail")))
            client.close()
        finally:
            hop.stop()
            backend.stop()
