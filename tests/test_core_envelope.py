"""Unit tests for the SOAP envelope model, faults and policy concepts."""

import numpy as np
import pytest

from repro.core import (
    BXSAEncoding,
    PolicyConceptError,
    SOAP_ENV_URI,
    SoapEnvelope,
    SoapFault,
    XMLEncoding,
    check_binding_client,
    check_binding_server,
    check_encoding_policy,
    encoding_for_content_type,
)
from repro.xdm import array, deep_equal, element, leaf


class TestEnvelope:
    def test_roundtrip_via_document(self):
        env = SoapEnvelope.wrap(element("Op", leaf("x", 1, "int")))
        env.add_header(element("TraceId", attributes={"v": "abc"}))
        doc = env.to_document()
        back = SoapEnvelope.from_document(doc)
        assert deep_equal(env.body_root, back.body_root)
        assert back.header("TraceId").attribute("v").value == "abc"

    def test_document_shape(self):
        doc = SoapEnvelope.wrap(element("Op")).to_document()
        root = doc.root
        assert root.name.uri == SOAP_ENV_URI
        assert root.name.local == "Envelope"
        kids = [c.name.local for c in root.elements()]
        assert kids == ["Body"]

    def test_header_emitted_only_when_present(self):
        doc = SoapEnvelope.wrap(element("Op"))
        doc.add_header(element("H"))
        kids = [c.name.local for c in doc.to_document().root.elements()]
        assert kids == ["Header", "Body"]

    def test_body_root_requires_element(self):
        with pytest.raises(ValueError):
            SoapEnvelope().body_root

    @pytest.mark.parametrize(
        "xml",
        [
            "<NotEnvelope/>",
            f'<e:Envelope xmlns:e="{SOAP_ENV_URI}"/>',  # no Body
            f'<e:Envelope xmlns:e="{SOAP_ENV_URI}"><e:Body/><e:Header/></e:Envelope>',
            f'<e:Envelope xmlns:e="{SOAP_ENV_URI}"><e:Body/><e:Body/></e:Envelope>',
            f'<e:Envelope xmlns:e="{SOAP_ENV_URI}"><e:Other/><e:Body/></e:Envelope>',
        ],
    )
    def test_invalid_envelopes_rejected(self, xml):
        from repro.xmlcodec import parse_document

        with pytest.raises(ValueError):
            SoapEnvelope.from_document(parse_document(xml))


class TestFault:
    def test_roundtrip(self):
        fault = SoapFault("soap:Server", "boom", "stack details")
        back = SoapFault.from_element(fault.to_element())
        assert back.code == "soap:Server"
        assert back.string == "boom"
        assert back.detail == "stack details"

    def test_find_in_body(self):
        fault = SoapFault("soap:Client", "bad")
        env = SoapEnvelope.wrap(fault.to_element())
        assert SoapFault.find_in(env.body_children) is not None
        assert SoapFault.find_in([element("NotAFault")]) is None

    def test_is_exception(self):
        with pytest.raises(SoapFault, match="boom"):
            raise SoapFault("soap:Server", "boom")


class TestEncodingPolicies:
    @pytest.mark.parametrize("encoding", [XMLEncoding(), BXSAEncoding()])
    def test_envelope_roundtrip(self, encoding):
        env = SoapEnvelope.wrap(
            element("Op", leaf("n", 5, "int"), array("v", np.arange(4.0)))
        )
        payload = encoding.encode(env.to_document())
        assert isinstance(payload, bytes)
        back = SoapEnvelope.from_document(encoding.decode(payload))
        assert deep_equal(env.body_root, back.body_root, ignore_ns_decls=True)

    def test_bxsa_much_smaller_for_arrays(self):
        env = SoapEnvelope.wrap(
            element("Op", array("v", np.random.default_rng(0).random(10000)))
        )
        doc = env.to_document()
        xml_size = len(XMLEncoding().encode(doc))
        bxsa_size = len(BXSAEncoding().encode(doc))
        assert bxsa_size < xml_size / 3

    def test_content_types(self):
        assert XMLEncoding().content_type == "text/xml"
        assert BXSAEncoding().content_type == "application/bxsa"

    def test_lookup_by_content_type(self):
        assert isinstance(encoding_for_content_type("text/xml"), XMLEncoding)
        assert isinstance(encoding_for_content_type("application/bxsa"), BXSAEncoding)
        assert isinstance(
            encoding_for_content_type("text/xml; charset=utf-8"), XMLEncoding
        )
        with pytest.raises(ValueError):
            encoding_for_content_type("application/json")


class TestConcepts:
    def test_valid_policies_pass(self):
        check_encoding_policy(XMLEncoding())
        check_encoding_policy(BXSAEncoding())

    def test_missing_method_rejected(self):
        class Half:
            content_type = "x/y"

            def encode(self, doc):
                return b""

        with pytest.raises(PolicyConceptError, match="decode"):
            check_encoding_policy(Half())

    def test_bad_content_type_rejected(self):
        class Bad:
            content_type = ""

            def encode(self, doc):
                return b""

            def decode(self, payload):
                return None

        with pytest.raises(PolicyConceptError):
            check_encoding_policy(Bad())

    def test_binding_concepts(self):
        class ClientOnly:
            def send_request(self, p, c): ...

            def receive_response(self): ...

        check_binding_client(ClientOnly())
        with pytest.raises(PolicyConceptError):
            check_binding_server(ClientOnly())

    def test_non_callable_rejected(self):
        class Attr:
            send_request = "nope"
            receive_response = "nope"

        with pytest.raises(PolicyConceptError):
            check_binding_client(Attr())

    def test_engine_checks_at_construction(self):
        from repro.core import SoapEngine

        with pytest.raises(PolicyConceptError):
            SoapEngine(object(), object())
