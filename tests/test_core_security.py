"""Tests for the security policy — §5's "just add more policies" claim."""

import numpy as np
import pytest

from repro.core import (
    BXSAEncoding,
    HmacSigningPolicy,
    NullSecurity,
    SECURITY_FAULT,
    SecretKey,
    SoapEngine,
    SoapEnvelope,
    SoapFault,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
    check_security_policy,
)
from repro.core.concepts import PolicyConceptError
from repro.core.security import (
    ChunkSignatureError,
    ChunkSigner,
    ChunkVerifier,
    sign_stream,
    verify_stream,
)
from repro.services import echo_dispatcher
from repro.transport import MemoryNetwork
from repro.xdm import array, element, leaf
from repro.xdm.path import children_named


@pytest.fixture()
def key():
    return SecretKey.generate()


class TestSigningUnit:
    def test_sign_adds_header(self, key):
        env = SoapEnvelope.wrap(element("Op", leaf("x", 1, "int")))
        HmacSigningPolicy(key).sign(env)
        header = env.header("Signature")
        assert header is not None
        fields = {c.name.local for c in header.elements()}
        assert fields == {"keyId", "algorithm", "value"}

    def test_verify_accepts_own_signature(self, key):
        policy = HmacSigningPolicy(key)
        env = SoapEnvelope.wrap(element("Op", array("v", np.arange(10.0))))
        policy.sign(env)
        policy.verify(env)  # must not raise

    def test_resigning_replaces_header(self, key):
        policy = HmacSigningPolicy(key)
        env = SoapEnvelope.wrap(element("Op"))
        policy.sign(env)
        policy.sign(env)
        assert sum(1 for b in env.header_blocks if b.name.local == "Signature") == 1

    def test_tampered_body_rejected(self, key):
        policy = HmacSigningPolicy(key)
        env = SoapEnvelope.wrap(element("Op", leaf("amount", 10, "int")))
        policy.sign(env)
        children_named(env.body_root, "amount")[0].value = 1_000_000
        with pytest.raises(SoapFault, match="signature"):
            policy.verify(env)

    def test_wrong_key_rejected(self, key):
        env = SoapEnvelope.wrap(element("Op"))
        HmacSigningPolicy(key).sign(env)
        other = HmacSigningPolicy(SecretKey.generate(key_id=key.key_id))
        with pytest.raises(SoapFault):
            other.verify(env)

    def test_unknown_key_id_rejected(self, key):
        env = SoapEnvelope.wrap(element("Op"))
        HmacSigningPolicy(SecretKey.generate(key_id="other")).sign(env)
        with pytest.raises(SoapFault, match="key id"):
            HmacSigningPolicy(key).verify(env)

    def test_unsigned_rejected_by_default(self, key):
        with pytest.raises(SoapFault, match="not signed"):
            HmacSigningPolicy(key).verify(SoapEnvelope.wrap(element("Op")))

    def test_unsigned_tolerated_when_optional(self, key):
        HmacSigningPolicy(key, require_signature=False).verify(
            SoapEnvelope.wrap(element("Op"))
        )

    def test_signature_survives_reencoding(self, key):
        """The MAC covers the data model, not the bytes: XML → bXDM → BXSA
        → bXDM keeps it valid (the intermediary/transcoding property)."""
        policy = HmacSigningPolicy(key)
        env = SoapEnvelope.wrap(element("Op", array("v", np.arange(64.0))))
        policy.sign(env)
        for encoding in (XMLEncoding(), BXSAEncoding()):
            rebuilt = SoapEnvelope.from_document(
                encoding.decode(encoding.encode(env.to_document()))
            )
            policy.verify(rebuilt)

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SecretKey(b"short")

    def test_concept_check(self, key):
        check_security_policy(HmacSigningPolicy(key))
        check_security_policy(NullSecurity())
        with pytest.raises(PolicyConceptError):
            check_security_policy(object())

    def test_engine_rejects_bad_security_policy(self, key):
        class FakeBinding:
            def send_request(self, p, c): ...

            def receive_response(self): ...

        with pytest.raises(PolicyConceptError):
            SoapEngine(XMLEncoding(), FakeBinding(), security=object())


class TestSecuredService:
    @pytest.mark.parametrize("encoding_cls", [XMLEncoding, BXSAEncoding])
    def test_end_to_end_signed_exchange(self, key, encoding_cls):
        net = MemoryNetwork()
        security = HmacSigningPolicy(key)
        with SoapTcpService(net.listen("sec"), echo_dispatcher(), security=security):
            client = SoapTcpClient(
                lambda: net.connect("sec"),
                encoding=encoding_cls(),
                security=HmacSigningPolicy(key),
            )
            response = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 5, "int"))))
            assert children_named(response.body_root, "x")[0].value == 5
            client.close()

    def test_unsigned_client_rejected(self, key):
        net = MemoryNetwork()
        with SoapTcpService(
            net.listen("sec"), echo_dispatcher(), security=HmacSigningPolicy(key)
        ):
            client = SoapTcpClient(lambda: net.connect("sec"))
            with pytest.raises(SoapFault, match=SECURITY_FAULT.replace("sec:", "")):
                client.call(SoapEnvelope.wrap(element("Echo")))
            client.close()

    def test_wrong_key_client_rejected(self, key):
        net = MemoryNetwork()
        with SoapTcpService(
            net.listen("sec"), echo_dispatcher(), security=HmacSigningPolicy(key)
        ):
            client = SoapTcpClient(
                lambda: net.connect("sec"),
                security=HmacSigningPolicy(SecretKey.generate(key_id=key.key_id)),
            )
            with pytest.raises(SoapFault):
                client.call(SoapEnvelope.wrap(element("Echo")))
            client.close()

    def test_http_service_signed(self, key):
        from repro.core import SoapHttpClient, SoapHttpService

        net = MemoryNetwork()
        with SoapHttpService(
            net.listen("sech"), echo_dispatcher(), security=HmacSigningPolicy(key)
        ):
            client = SoapHttpClient(
                lambda: net.connect("sech"), security=HmacSigningPolicy(key)
            )
            response = client.call(SoapEnvelope.wrap(element("Echo", leaf("y", 2, "int"))))
            assert children_named(response.body_root, "y")[0].value == 2
            client.close()

    def test_fault_responses_are_signed(self, key):
        """Server faults remain verifiable by the client's policy."""
        net = MemoryNetwork()
        with SoapTcpService(
            net.listen("sec"), echo_dispatcher(), security=HmacSigningPolicy(key)
        ):
            client = SoapTcpClient(
                lambda: net.connect("sec"), security=HmacSigningPolicy(key)
            )
            with pytest.raises(SoapFault, match="no such operation"):
                client.call(SoapEnvelope.wrap(element("Nope")))
            client.close()


class TestChunkSigning:
    """The non-blocking chunk-signature layer (Kohring & Lo Iacono):
    per-chunk MACs verified in flight, a chained trailer sealing the
    whole flow — O(chunk) memory at both ends."""

    def test_roundtrip_byte_at_a_time(self, key):
        payloads = [b"alpha", b"beta-beta", b"\x00" * 1000]
        signer = ChunkSigner(key)
        wire = b"".join([signer.wrap(p) for p in payloads] + [signer.trailer()])
        verifier = ChunkVerifier(key)
        out = []
        for i in range(len(wire)):  # worst-case fragmentation
            out.extend(verifier.feed(wire[i : i + 1]))
        verifier.close()
        assert verifier.done
        assert out == payloads

    def test_stream_generators_roundtrip(self, key):
        payloads = [bytes([i]) * (100 + i) for i in range(1, 20)]
        assert list(verify_stream(sign_stream(iter(payloads), key), key)) == payloads

    def test_tampered_chunk_detected(self, key):
        signer = ChunkSigner(key)
        wire = bytearray(signer.wrap(b"payload-under-test") + signer.trailer())
        wire[10] ^= 0x01  # flip one payload bit
        verifier = ChunkVerifier(key)
        with pytest.raises(ChunkSignatureError):
            verifier.feed(bytes(wire))

    def test_truncation_detected(self, key):
        signer = ChunkSigner(key)
        wire = signer.wrap(b"first") + signer.wrap(b"second")  # no trailer
        verifier = ChunkVerifier(key)
        assert verifier.feed(wire) == [b"first", b"second"]
        with pytest.raises(ChunkSignatureError, match="trailer"):
            verifier.close()

    def test_reordered_chunks_detected(self, key):
        signer = ChunkSigner(key)
        first, second = signer.wrap(b"first-chunk"), signer.wrap(b"second-chunk")
        verifier = ChunkVerifier(key)
        with pytest.raises(ChunkSignatureError):
            verifier.feed(second + first + signer.trailer())

    def test_data_past_trailer_rejected(self, key):
        signer = ChunkSigner(key)
        wire = signer.wrap(b"only") + signer.trailer()
        verifier = ChunkVerifier(key)
        with pytest.raises(ChunkSignatureError):
            verifier.feed(wire + b"x")

    def test_wrong_key_rejected(self, key):
        signer = ChunkSigner(key)
        wire = signer.wrap(b"data") + signer.trailer()
        with pytest.raises(ChunkSignatureError):
            ChunkVerifier(SecretKey.generate()).feed(wire)

    def test_empty_chunk_rejected(self, key):
        with pytest.raises(ChunkSignatureError):
            ChunkSigner(key).wrap(b"")

    def test_signer_single_use_after_trailer(self, key):
        signer = ChunkSigner(key)
        signer.wrap(b"x")
        signer.trailer()
        with pytest.raises(ChunkSignatureError):
            signer.wrap(b"y")

    def test_bounded_memory_end_to_end(self, key):
        """A multi-MiB flow verifies chunk-by-chunk: at no point does the
        verifier hold more than one signed chunk in its buffer."""
        chunk = b"\xab" * (256 * 1024)
        verifier = ChunkVerifier(key)
        out_bytes = 0
        for piece in sign_stream((chunk for _ in range(64)), key):
            for payload in verifier.feed(piece):
                out_bytes += len(payload)
            assert len(verifier._buf) <= len(chunk) + 64
        verifier.close()
        assert out_bytes == 64 * len(chunk)
