"""Tests for the WSDL-lite service descriptions (§2's flexibility claim)."""

import pytest

from repro.bxsa import decode, encode
from repro.core import BXSAEncoding, SoapEnvelope, SoapTcpService, XMLEncoding
from repro.core.wsdl import ServiceDescription, WsdlError
from repro.services import echo_dispatcher
from repro.transport import MemoryNetwork
from repro.xdm import element, leaf
from repro.xdm.path import children_named
from repro.xmlcodec import parse_document, serialize


def sample_description(**overrides) -> ServiceDescription:
    values = dict(
        name="EchoService",
        operations=("Echo",),
        transport="tcp",
        encoding_content_type="application/bxsa",
        location="svc",
    )
    values.update(overrides)
    return ServiceDescription(**values)


class TestDescriptionDocument:
    def test_roundtrip_via_xml(self):
        desc = sample_description(operations=("Echo", "Sum"))
        xml = serialize(desc.to_document())
        back = ServiceDescription.from_document(parse_document(xml))
        assert back == desc

    def test_roundtrip_via_bxsa(self):
        """The description itself rides either encoding — it is just bXDM."""
        desc = sample_description(transport="http", http_target="/api/soap")
        blob = encode(desc.to_document())
        back = ServiceDescription.from_document(decode(blob))
        assert back == desc

    def test_document_declares_extension_attribute(self):
        xml = serialize(sample_description().to_document())
        assert "bx:encoding" in xml
        assert 'transport="tcp"' in xml

    def test_unsupported_transport_rejected(self):
        with pytest.raises(WsdlError, match="transport"):
            sample_description(transport="smtp")

    def test_no_operations_rejected(self):
        with pytest.raises(WsdlError, match="operation"):
            sample_description(operations=())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda root: root.attributes.clear(),  # no service name
            lambda root: root.children.__delitem__(0),  # no portType
            lambda root: root.children.__delitem__(1),  # no binding
            lambda root: root.children.__delitem__(2),  # no service/port
        ],
    )
    def test_malformed_documents_rejected(self, mutate):
        doc = sample_description().to_document()
        mutate(doc.root)
        with pytest.raises(WsdlError):
            ServiceDescription.from_document(doc)

    def test_wrong_root_rejected(self):
        with pytest.raises(WsdlError, match="definitions"):
            ServiceDescription.from_document(parse_document("<nope/>"))


class TestClientFromDescription:
    def test_tcp_client_uses_declared_encoding(self):
        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), echo_dispatcher()):
            desc = sample_description()  # declares application/bxsa over tcp
            client = desc.make_client(lambda loc: (lambda: net.connect(loc)))
            assert isinstance(client._encoding, BXSAEncoding)
            response = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 3, "int"))))
            assert children_named(response.body_root, "x")[0].value == 3
            client.close()

    def test_http_client_from_description(self):
        from repro.core import SoapHttpService

        net = MemoryNetwork()
        with SoapHttpService(net.listen("web"), echo_dispatcher(), target="/api"):
            desc = sample_description(
                transport="http",
                location="web",
                encoding_content_type="text/xml",
                http_target="/api",
            )
            client = desc.make_client(lambda loc: (lambda: net.connect(loc)))
            response = client.call(SoapEnvelope.wrap(element("Echo", leaf("y", 4, "int"))))
            assert children_named(response.body_root, "y")[0].value == 4
            client.close()

    def test_published_description_end_to_end(self):
        """The realistic flow: server publishes its WSDL over HTTP; the
        client fetches it, reads the declared binding, and connects with
        exactly those policies — no hardcoded configuration."""
        from repro.transport.http import HttpClient, HttpServer, HttpResponse

        net = MemoryNetwork()
        desc = sample_description(location="svc", encoding_content_type="application/bxsa")
        wsdl_xml = serialize(desc.to_document(), xml_declaration=True).encode()

        def serve_wsdl(request):
            if request.target == "/service?wsdl":
                resp = HttpResponse(200, body=wsdl_xml)
                resp.headers.set("Content-Type", "text/xml")
                return resp
            return HttpResponse(404)

        web = HttpServer(net.listen("meta"), serve_wsdl).start()
        soap = SoapTcpService(net.listen("svc"), echo_dispatcher()).start()
        try:
            http = HttpClient(lambda: net.connect("meta"))
            fetched = ServiceDescription.from_document(
                parse_document(http.get("/service?wsdl").body)
            )
            http.close()
            assert fetched == desc
            client = fetched.make_client(lambda loc: (lambda: net.connect(loc)))
            response = client.call(
                SoapEnvelope.wrap(element("Echo", leaf("z", 9.5, "double")))
            )
            assert children_named(response.body_root, "z")[0].value == 9.5
            client.close()
        finally:
            soap.stop()
            web.stop()

    def test_declared_compressed_encoding(self):
        """A registered compressed policy is declarable like any other."""
        from repro.core import DeflateEncoding

        DeflateEncoding(XMLEncoding()).register()
        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), echo_dispatcher()):
            desc = sample_description(encoding_content_type="text/xml+deflate")
            client = desc.make_client(lambda loc: (lambda: net.connect(loc)))
            response = client.call(SoapEnvelope.wrap(element("Echo", leaf("k", 1, "int"))))
            assert children_named(response.body_root, "k")[0].value == 1
            client.close()
