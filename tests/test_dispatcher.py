"""Focused tests for the dispatcher and RPC conveniences."""

import pytest

from repro.core import Dispatcher, ServiceProxy, SoapEnvelope, SoapFault, SoapTcpClient, SoapTcpService
from repro.core.dispatcher import _coerce_envelope
from repro.transport import MemoryNetwork
from repro.xdm import QName, element, leaf, text
from repro.xdm.path import children_named


class TestRegistration:
    def test_local_name_matches_any_namespace(self):
        d = Dispatcher()
        d.register("Op", lambda req: element("R"))
        request = SoapEnvelope.wrap(element(QName("Op", "urn:any")))
        assert d.dispatch(request).body_root.name.local == "R"

    def test_qualified_registration_is_exact(self):
        d = Dispatcher()
        d.register("{urn:a}Op", lambda req: element("A"))
        d.register("{urn:b}Op", lambda req: element("B"))
        assert (
            d.dispatch(SoapEnvelope.wrap(element(QName("Op", "urn:b")))).body_root.name.local
            == "B"
        )

    def test_exact_match_beats_local(self):
        d = Dispatcher()
        d.register("Op", lambda req: element("local"))
        d.register("{urn:a}Op", lambda req: element("exact"))
        assert (
            d.dispatch(SoapEnvelope.wrap(element(QName("Op", "urn:a")))).body_root.name.local
            == "exact"
        )
        assert (
            d.dispatch(SoapEnvelope.wrap(element("Op"))).body_root.name.local == "local"
        )

    def test_duplicate_registration_rejected(self):
        d = Dispatcher()
        d.register("Op", lambda req: None)
        with pytest.raises(ValueError, match="already registered"):
            d.register("Op", lambda req: None)

    def test_operations_listing(self):
        d = Dispatcher()
        d.register("A", lambda req: None)
        d.register("{urn:x}B", lambda req: None)
        assert set(d.operations()) == {"A", "{urn:x}B"}

    def test_decorator_returns_handler(self):
        d = Dispatcher()

        @d.operation("Op")
        def handler(req):
            return None

        assert handler(SoapEnvelope()) is None  # still callable directly


class TestDispatchSemantics:
    def test_empty_body_is_client_fault(self):
        d = Dispatcher()
        with pytest.raises(SoapFault, match="soap:Client"):
            d.dispatch(SoapEnvelope([text("just text")]))

    def test_handler_returning_none_gives_empty_body(self):
        d = Dispatcher()
        d.register("Op", lambda req: None)
        response = d.dispatch(SoapEnvelope.wrap(element("Op")))
        assert response.body_children == []

    def test_handler_returning_iterable(self):
        d = Dispatcher()
        d.register("Op", lambda req: [element("a"), element("b")])
        response = d.dispatch(SoapEnvelope.wrap(element("Op")))
        assert [c.name.local for c in response.body_children] == ["a", "b"]

    def test_handler_returning_envelope_passthrough(self):
        d = Dispatcher()
        custom = SoapEnvelope.wrap(element("Custom"))
        d.register("Op", lambda req: custom)
        assert d.dispatch(SoapEnvelope.wrap(element("Op"))) is custom

    def test_soap_fault_passes_through_unwrapped(self):
        d = Dispatcher()

        def handler(req):
            raise SoapFault("soap:Client", "your fault", "details")

        d.register("Op", handler)
        with pytest.raises(SoapFault, match="your fault"):
            d.dispatch(SoapEnvelope.wrap(element("Op")))

    def test_coerce_envelope_variants(self):
        assert _coerce_envelope(None).body_children == []
        assert _coerce_envelope(element("x")).body_root.name.local == "x"
        assert len(_coerce_envelope([element("a"), text("t")]).body_children) == 2


class TestServiceProxy:
    def test_invoke_with_headers(self):
        net = MemoryNetwork()
        d = Dispatcher()

        @d.operation("WhoAmI")
        def whoami(request: SoapEnvelope):
            trace = request.header("TraceId")
            return element(
                "WhoAmIResponse",
                leaf("trace", trace.attribute("v").value if trace else "", "string"),
            )

        with SoapTcpService(net.listen("svc"), d):
            proxy = ServiceProxy(SoapTcpClient(lambda: net.connect("svc")))
            result = proxy.invoke(
                "WhoAmI", headers=(element("TraceId", attributes={"v": "t-42"}),)
            )
            assert children_named(result, "trace")[0].value == "t-42"
            proxy.close()
