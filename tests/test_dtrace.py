"""Cross-process distributed tracing, end to end.

The tentpole invariant: a client exchange against a live server (either
serving core) yields two per-process trace files that
:func:`repro.obs.analyze.join_traces` assembles into ONE tree — one
trace id, server spans parented under the client's wire spans, wire
time non-negative, segments reconciling, a RED exemplar naming the
trace.  Plus the abuse cases: malformed, oversized or duplicate trace
headers must never fail a request — the server just starts a fresh
root.
"""

import pytest

from repro import obs
from repro.core.dispatcher import Dispatcher
from repro.core.envelope import SoapEnvelope
from repro.core.policies import XMLEncoding
from repro.harness.dtrace import run_distributed_trace_demo
from repro.obs import TraceRecorder, propagation, trace_dict
from repro.obs.analyze import join_traces
from repro.serve import ServeConfig, SoapServeService
from repro.transport import MemoryNetwork
from repro.transport.base import BufferedChannel
from repro.transport.http.client import HttpClient
from repro.transport.http.messages import read_response
from repro.transport.sockets import TcpListener, connect_tcp
from repro.xdm import element, leaf


def _echo_dispatcher():
    d = Dispatcher()

    @d.operation("Echo")
    def echo(request):
        return element("EchoResponse", *request.body_root.children)

    return d


def _soap_body() -> bytes:
    envelope = SoapEnvelope.wrap(element("Echo", leaf("n", 1, "int")))
    return XMLEncoding().encode(envelope.to_document())


def _raw_request(body: bytes, trace_headers: list[str]) -> bytes:
    lines = [
        "POST /soap HTTP/1.1",
        "Host: test",
        "Content-Type: text/xml",
        f"Content-Length: {len(body)}",
    ]
    lines += [f"X-Repro-Trace: {value}" for value in trace_headers]
    lines += ["Connection: close", "", ""]
    return "\r\n".join(lines).encode() + body


class TestEndToEnd:
    @pytest.mark.parametrize("core", ["threaded", "aio"])
    def test_assembled_trace_holds_invariants(self, core):
        result = run_distributed_trace_demo(core=core)
        assert result["ok"], result["problems"]
        join = result["join"]
        assert len(join["trace_ids"]) == 1
        assert len(join["links"]) == 3
        for link in join["links"]:
            assert link["client_service"] == "client"
            assert link["server_service"] == "serve"
            assert link["wire_seconds"] >= 0
            assert link["trace_id"] == result["trace_id"]

    def test_trace_files_written_and_joinable(self, tmp_path):
        result = run_distributed_trace_demo(core="threaded", trace_dir=str(tmp_path))
        assert result["ok"], result["problems"]
        assert result["client_trace"] is not None
        from repro.obs.analyze import load_documents

        docs = [
            load_documents(result["client_trace"])[0],
            load_documents(result["server_trace"])[0],
        ]
        assert docs[0]["meta"]["service"] == "client"
        assert docs[1]["meta"]["service"] == "serve"
        rejoined = join_traces(docs)
        assert rejoined["ok"]

    def test_streamed_markers_ride_the_trace(self):
        result = run_distributed_trace_demo(core="threaded", streamed_markers=True)
        assert result["ok"], result["problems"]


class TestHeaderRobustness:
    """Hostile or broken trace headers never fail the request."""

    BAD_HEADERS = [
        ["not-a-context"],
        ["f" * 200],  # oversized
        ["1" * 32 + "-" + "0" * 16 + "-01-XY"],  # non-hex origin
        ["0" * 32 + "-" + "0" * 16 + "-01-ab"],  # zero trace id
        # duplicates: each individually valid, together ambiguous
        [
            "1" * 32 + "-" + "1" * 16 + "-01-aabbccdd",
            "2" * 32 + "-" + "2" * 16 + "-01-aabbccdd",
        ],
    ]

    def _serve_spans(self, recorder):
        return [sp for sp in recorder.spans if sp.name == "http.serve"]

    @pytest.mark.parametrize("headers", BAD_HEADERS)
    def test_threaded_core_starts_fresh_root(self, headers):
        recorder = TraceRecorder(service="serve", origin="aa000001")
        previous = obs.set_recorder(recorder)
        net = MemoryNetwork()
        service = SoapServeService(
            net.listen("svc"), _echo_dispatcher(), config=ServeConfig(workers=1)
        ).start()
        try:
            channel = net.connect("svc")
            channel.send_all(_raw_request(_soap_body(), headers))
            response = read_response(BufferedChannel(channel))
            channel.close()
        finally:
            service.stop()
            obs.set_recorder(previous)
        assert response.status == 200
        (serve,) = self._serve_spans(recorder)
        # fresh root: no remote join keys, locally-derived trace id
        assert "trace.remote_origin" not in serve.attributes
        assert serve.parent_id is None
        assert serve.trace_id not in (0, int("1" * 32, 16), int("2" * 32, 16))

    @pytest.mark.parametrize("headers", BAD_HEADERS)
    def test_aio_core_starts_fresh_root(self, headers):
        recorder = TraceRecorder(service="serve", origin="aa000002")
        previous = obs.set_recorder(recorder)
        listener = TcpListener()
        host, port = listener.address
        service = SoapServeService(
            listener,
            _echo_dispatcher(),
            config=ServeConfig(core="aio", workers=1),
        ).start()
        try:
            channel = connect_tcp(host, port)
            channel.send_all(_raw_request(_soap_body(), headers))
            response = read_response(BufferedChannel(channel))
            channel.close()
        finally:
            service.stop()
            obs.set_recorder(previous)
        assert response.status == 200
        (serve,) = self._serve_spans(recorder)
        assert "trace.remote_origin" not in serve.attributes
        assert serve.trace_id not in (0, int("1" * 32, 16), int("2" * 32, 16))

    def test_well_formed_header_joins(self):
        """Sanity for the suite above: a good header DOES join."""
        recorder = TraceRecorder(service="serve", origin="aa000003")
        previous = obs.set_recorder(recorder)
        net = MemoryNetwork()
        service = SoapServeService(
            net.listen("svc"), _echo_dispatcher(), config=ServeConfig(workers=1)
        ).start()
        ctx = propagation.TraceContext(0xFEED, 42, True, "11223344")
        try:
            channel = net.connect("svc")
            channel.send_all(
                _raw_request(_soap_body(), [propagation.format_context(ctx)])
            )
            response = read_response(BufferedChannel(channel))
            channel.close()
        finally:
            service.stop()
            obs.set_recorder(previous)
        assert response.status == 200
        (serve,) = self._serve_spans(recorder)
        assert serve.trace_id == 0xFEED
        assert serve.attributes["trace.remote_origin"] == "11223344"
        assert serve.attributes["trace.remote_span"] == 42


class _SteppedClock:
    """Deterministic clock: each read advances by ``step``."""

    def __init__(self, step):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def _client_server_docs():
    """A minimal linked pair of per-process trace documents.

    Deterministic clocks keep the client span strictly longer than the
    server span, so the happy path has positive wire time by construction.
    """
    client = TraceRecorder(service="client", origin="c0000001", clock=_SteppedClock(0.010))
    with client.span("http.request") as client_span:
        pass
    server = TraceRecorder(service="serve", origin="50000001", clock=_SteppedClock(0.001))
    ctx = propagation.TraceContext(
        client_span.trace_id, client_span.span_id, True, "c0000001"
    )
    with server.span("http.serve", context=ctx):
        pass
    return (
        trace_dict(client),
        trace_dict(server),
        client_span,
    )


class TestJoinTraces:
    def test_happy_path_links_and_annotates(self):
        client_doc, server_doc, client_span = _client_server_docs()
        result = join_traces([client_doc, server_doc])
        assert result["ok"], result["problems"]
        assert len(result["links"]) == 1
        link = result["links"][0]
        assert link["client_span"] == client_span.span_id
        assert link["wire_seconds"] >= 0
        # the server root was adopted under the client span
        assert any(
            child["name"] == "http.serve"
            for root in result["roots"]
            for child in _all_spans(root)
        )

    def test_unresolved_remote_parent_is_a_problem(self):
        _, server_doc, _ = _client_server_docs()
        result = join_traces([server_doc])
        assert not result["ok"]
        assert any("not found" in p for p in result["problems"])

    def test_trace_id_mismatch_is_a_problem(self):
        client_doc, server_doc, _ = _client_server_docs()
        server_doc["spans"][0]["trace_id"] = "f" * 32
        result = join_traces([client_doc, server_doc])
        assert not result["ok"]
        assert any("does not match" in p for p in result["problems"])

    def test_negative_wire_time_is_a_problem(self):
        client_doc, server_doc, _ = _client_server_docs()
        server_doc["spans"][0]["seconds"] = (
            client_doc["spans"][0].get("seconds", 0.0) + 1.0
        )
        result = join_traces([client_doc, server_doc])
        assert not result["ok"]
        assert any("negative wire time" in p for p in result["problems"])


def _all_spans(root):
    yield root
    for child in root.get("children", ()):
        yield from _all_spans(child)


class TestAioLoopHealth:
    def test_loop_gauges_on_metrics_endpoint(self):
        listener = TcpListener()
        host, port = listener.address
        service = SoapServeService(
            listener,
            _echo_dispatcher(),
            config=ServeConfig(core="aio", workers=1),
        ).start()
        try:
            client = HttpClient(lambda: connect_tcp(host, port))
            try:
                client.request("POST", "/soap", body=_soap_body())
                response = client.request("GET", "/metrics")
            finally:
                client.close()
        finally:
            service.stop()
        assert response.status == 200
        body = response.body.decode()
        assert "aio_loop_lag_seconds" in body
        assert "aio_ready_queue_depth" in body
