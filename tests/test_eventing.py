"""Tests for the WS-Eventing-lite layer (Figure 3's box above SOAP)."""

import threading
import time

import numpy as np
import pytest

from repro.core import BXSAEncoding, SoapEnvelope, SoapFault, SoapTcpClient, SoapTcpService
from repro.services.eventing import EventSource, NotificationSink
from repro.transport import MemoryNetwork
from repro.xdm import array, element, leaf
from repro.xdm.path import children_named


class Collector:
    """Thread-safe event collector with a wait helper."""

    def __init__(self) -> None:
        self.events: list = []
        self._condition = threading.Condition()

    def __call__(self, subscription_id, event) -> None:
        with self._condition:
            self.events.append((subscription_id, event))
            self._condition.notify_all()

    def wait_for(self, count: int, timeout: float = 5.0) -> list:
        deadline = time.monotonic() + timeout
        with self._condition:
            while len(self.events) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AssertionError(
                        f"expected {count} events, got {len(self.events)}"
                    )
                self._condition.wait(remaining)
            return list(self.events)


@pytest.fixture()
def world():
    net = MemoryNetwork()
    source = EventSource(net.connect)
    service = SoapTcpService(net.listen("events"), source.dispatcher).start()
    sinks: list[NotificationSink] = []

    def make_sink(address: str, collector, encoding=None) -> NotificationSink:
        sink = NotificationSink(net.listen(address), collector, encoding=encoding).start()
        sinks.append(sink)
        return sink

    yield net, source, make_sink
    for sink in sinks:
        sink.stop()
    service.stop()


def subscribe(net, address, *, xpath_filter=None, content_type=None) -> str:
    client = SoapTcpClient(lambda: net.connect("events"))
    children = [leaf("address", address, "string")]
    if xpath_filter:
        children.append(leaf("filter", xpath_filter, "string"))
    if content_type:
        children.append(leaf("encoding", content_type, "string"))
    response = client.call(SoapEnvelope.wrap(element("Subscribe", *children)))
    client.close()
    return str(children_named(response.body_root, "subscriptionId")[0].value)


class TestSubscribePublish:
    def test_single_subscriber_receives_event(self, world):
        net, source, make_sink = world
        collector = Collector()
        make_sink("sink1", collector)
        sub_id = subscribe(net, "sink1")
        assert source.subscriber_count == 1

        delivered = source.publish(element("reading", leaf("v", 42, "int")))
        assert delivered == 1
        events = collector.wait_for(1)
        received_id, event = events[0]
        assert received_id == sub_id
        assert children_named(event, "v")[0].value == 42

    def test_multiple_subscribers_fan_out(self, world):
        net, source, make_sink = world
        collectors = [Collector() for _ in range(3)]
        for i, collector in enumerate(collectors):
            make_sink(f"fan{i}", collector)
            subscribe(net, f"fan{i}")
        assert source.publish(element("tick")) == 3
        for collector in collectors:
            collector.wait_for(1)

    def test_xpath_filter_selects_events(self, world):
        net, source, make_sink = world
        hot, cold = Collector(), Collector()
        make_sink("hot", hot)
        make_sink("cold", cold)
        subscribe(net, "hot", xpath_filter='reading[@station="3"]')
        subscribe(net, "cold", xpath_filter='reading[@station="5"]')

        source.publish(element("reading", attributes={"station": "3"}))
        source.publish(element("reading", attributes={"station": "3"}))
        source.publish(element("reading", attributes={"station": "5"}))

        assert len(hot.wait_for(2)) == 2
        assert len(cold.wait_for(1)) == 1

    def test_binary_payload_event_in_bxsa(self, world):
        """A subscriber can ask for binary delivery of array payloads."""
        net, source, make_sink = world
        collector = Collector()
        make_sink("bin", collector, encoding=BXSAEncoding())
        subscribe(net, "bin", content_type="application/bxsa")
        samples = np.arange(256, dtype="f8")
        source.publish(element("burst", array("samples", samples)))
        _sub, event = collector.wait_for(1)[0]
        np.testing.assert_array_equal(
            np.asarray(children_named(event, "samples")[0].values), samples
        )

    def test_unsubscribe_stops_delivery(self, world):
        net, source, make_sink = world
        collector = Collector()
        make_sink("quit", collector)
        sub_id = subscribe(net, "quit")

        client = SoapTcpClient(lambda: net.connect("events"))
        client.call(
            SoapEnvelope.wrap(
                element("Unsubscribe", leaf("subscriptionId", sub_id, "string"))
            )
        )
        client.close()
        assert source.subscriber_count == 0
        assert source.publish(element("tick")) == 0

    def test_unknown_unsubscribe_faults(self, world):
        net, _source, _make_sink = world
        client = SoapTcpClient(lambda: net.connect("events"))
        with pytest.raises(SoapFault, match="unknown subscription"):
            client.call(
                SoapEnvelope.wrap(
                    element("Unsubscribe", leaf("subscriptionId", "nope", "string"))
                )
            )
        client.close()

    def test_bad_filter_rejected_at_subscribe(self, world):
        net, _source, _make_sink = world
        client = SoapTcpClient(lambda: net.connect("events"))
        with pytest.raises(SoapFault, match="bad filter"):
            client.call(
                SoapEnvelope.wrap(
                    element(
                        "Subscribe",
                        leaf("address", "x", "string"),
                        leaf("filter", "[[[", "string"),
                    )
                )
            )
        client.close()

    def test_missing_address_rejected(self, world):
        net, _source, _make_sink = world
        client = SoapTcpClient(lambda: net.connect("events"))
        with pytest.raises(SoapFault, match="address"):
            client.call(SoapEnvelope.wrap(element("Subscribe")))
        client.close()

    def test_dead_sink_counts_failure_but_others_deliver(self, world):
        net, source, make_sink = world
        collector = Collector()
        make_sink("alive", collector)
        subscribe(net, "alive")
        # subscribe an address nobody listens on
        client = SoapTcpClient(lambda: net.connect("events"))
        client.call(
            SoapEnvelope.wrap(
                element("Subscribe", leaf("address", "ghost", "string"))
            )
        )
        client.close()

        delivered = source.publish(element("tick"))
        assert delivered == 1
        assert source.delivery_failures == 1
        collector.wait_for(1)

    def test_source_shares_dispatcher_with_other_operations(self, world):
        net, source, _make_sink = world
        source.dispatcher.register("Ping", lambda req: element("Pong"))
        client = SoapTcpClient(lambda: net.connect("events"))
        assert client.call(SoapEnvelope.wrap(element("Ping"))).body_root.name.local == "Pong"
        client.close()
