"""Tests for the federated data plane (``repro.fed``).

Covers the balancer's replica-selection policies and circuit breaker
(with injectable clocks — no wall-clock sleeps in the breaker tests),
the liveness/readiness split on the admin surface, the content-addressed
response cache (TTL, LRU-bytes, single-flight), multi-source striping,
and the replica-failover acceptance scenarios: a replica killed
mid-load loses zero exchanges, failover is deterministic under a seeded
fault schedule, and the dead replica's circuit re-closes once it
recovers.
"""

import threading
import time

import pytest

from repro.core import Dispatcher, SoapEnvelope, SoapHttpClient
from repro.core.policies import XMLEncoding
from repro.fed import (
    Balancer,
    CachingClient,
    EwmaLatencyPolicy,
    FederatedClient,
    LeastOutstandingPolicy,
    NoReplicaAvailable,
    Replica,
    ResponseCache,
    RoundRobinPolicy,
    StripeVerificationError,
    envelope_key,
    request_key,
    striped_fetch,
)
from repro.fed.balancer import CIRCUIT_CLOSED, CIRCUIT_HALF_OPEN, CIRCUIT_OPEN
from repro.fed.node import decode_chunk, fed_blob, fed_dispatcher, spawn_nodes
from repro.fed.striping import plan_stripes, stripe_digests
from repro.gridftp.errors import GridFTPError, StripeTimeout
from repro.loadgen import closed_loop
from repro.netsim.faults import FaultProfile, FaultSchedule, faulty_connect
from repro.serve import ServeConfig, SoapServeService
from repro.transport import MemoryNetwork
from repro.transport.base import TransportError
from repro.transport.http import HttpClient
from repro.transport.resilience import RetryBudgetExhausted, RetryPolicy
from repro.xdm import element, leaf


def echo_envelope(n: int) -> SoapEnvelope:
    return SoapEnvelope.wrap(element("Echo", leaf("n", n, "int")))


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


def memory_cluster(count=3, *, workers=2, queue_depth=8, blob_size=1 << 14):
    network = MemoryNetwork()
    services, replicas = [], []
    for index in range(count):
        name = f"node-{index}"
        service = SoapServeService(
            network.listen(name),
            fed_dispatcher(blob_size=blob_size),
            config=ServeConfig(workers=workers, queue_depth=queue_depth),
            name=name,
        ).start()
        services.append(service)
        replicas.append(Replica(name, (lambda nm: (lambda: network.connect(nm)))(name)))
    return network, services, replicas


class FakeState:
    """Minimal stand-in for policy unit tests."""

    def __init__(self, name, outstanding=0, ewma=None):
        self.name = name
        self.outstanding = outstanding
        self.ewma_seconds = ewma


class TestPolicies:
    def test_round_robin_cycles(self):
        policy = RoundRobinPolicy()
        states = [FakeState("a"), FakeState("b"), FakeState("c")]
        picks = [policy.choose_replica(states).name for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_least_outstanding_picks_min_and_rotates_ties(self):
        policy = LeastOutstandingPolicy()
        states = [FakeState("a", 2), FakeState("b", 0), FakeState("c", 1)]
        assert policy.choose_replica(states).name == "b"
        tied = [FakeState("a"), FakeState("b"), FakeState("c")]
        picks = {policy.choose_replica(tied).name for _ in range(6)}
        assert picks == {"a", "b", "c"}

    def test_ewma_weights_latency_by_queue_depth(self):
        policy = EwmaLatencyPolicy()
        states = [
            FakeState("slow", 0, ewma=0.100),
            FakeState("fast-but-busy", 3, ewma=0.010),
            FakeState("fast", 0, ewma=0.010),
        ]
        assert policy.choose_replica(states).name == "fast"
        # an unmeasured replica costs nothing: it gets probed first
        states.append(FakeState("new", 0, ewma=None))
        assert policy.choose_replica(states).name == "new"


class TestCircuitBreaker:
    def make(self, **kwargs):
        self.now = [0.0]
        kwargs.setdefault("breaker_threshold", 2)
        kwargs.setdefault("breaker_cooldown", 10.0)
        replicas = [
            Replica("a", lambda: None),
            Replica("b", lambda: None),
        ]
        return Balancer(replicas, clock=lambda: self.now[0], **kwargs)

    def fail_once(self, balancer, name):
        state = balancer.state(name)
        while True:
            chosen = balancer.acquire()
            if chosen is state:
                balancer.release(chosen)
                return
            balancer.release(chosen, ok=True)

    def test_opens_after_threshold_and_half_opens_after_cooldown(self):
        balancer = self.make()
        self.fail_once(balancer, "a")
        assert balancer.state("a").circuit == CIRCUIT_CLOSED
        self.fail_once(balancer, "a")
        assert balancer.state("a").circuit == CIRCUIT_OPEN

        # while open, only b is admissible
        for _ in range(4):
            chosen = balancer.acquire()
            assert chosen.name == "b"
            balancer.release(chosen, ok=True)

        # past the cooldown one half-open trial is admitted; success closes
        self.now[0] = 11.0
        names = set()
        trial_pending = True
        for _ in range(4):
            chosen = balancer.acquire()
            names.add(chosen.name)
            if chosen.name == "a" and trial_pending:
                assert chosen.circuit == CIRCUIT_HALF_OPEN
                trial_pending = False
            balancer.release(chosen, ok=True)
        assert "a" in names
        assert balancer.state("a").circuit == CIRCUIT_CLOSED

    def test_failed_half_open_trial_reopens(self):
        balancer = self.make()
        self.fail_once(balancer, "a")
        self.fail_once(balancer, "a")
        self.now[0] = 11.0
        self.fail_once(balancer, "a")  # the trial fails
        state = balancer.state("a")
        assert state.circuit == CIRCUIT_OPEN
        assert state.open_until == pytest.approx(21.0)

    def test_busy_does_not_trip_breaker_but_proves_liveness(self):
        balancer = self.make(breaker_threshold=1)
        self.fail_once(balancer, "a")
        assert balancer.state("a").circuit == CIRCUIT_OPEN
        self.now[0] = 11.0
        # half-open trial answered 503: live server, circuit re-closes
        while True:
            chosen = balancer.acquire()
            if chosen.name == "a":
                balancer.release(chosen, busy=True)
                break
            balancer.release(chosen, ok=True)
        assert balancer.state("a").circuit == CIRCUIT_CLOSED
        # and repeated 503s never open it
        for _ in range(6):
            chosen = balancer.acquire()
            balancer.release(chosen, busy=True)
        assert balancer.state("a").circuit == CIRCUIT_CLOSED

    def test_no_replica_available_lists_reasons(self):
        balancer = self.make(breaker_threshold=1)
        self.fail_once(balancer, "a")
        self.fail_once(balancer, "b")
        with pytest.raises(NoReplicaAvailable) as excinfo:
            balancer.acquire()
        message = str(excinfo.value)
        assert "a=open" in message and "b=open" in message


class TestReadinessSplit:
    """Satellite: /healthz stays liveness, /readyz reflects saturation."""

    def setup_method(self):
        self.net = MemoryNetwork()
        self.release = threading.Event()
        d = Dispatcher()

        @d.operation("Block")
        def block(request):
            self.release.wait(timeout=10)
            return element("BlockResponse")

        self.service = SoapServeService(
            self.net.listen("serve"),
            d,
            config=ServeConfig(workers=1, queue_depth=4, ready_queue_fraction=0.75),
        ).start()

    def teardown_method(self):
        self.release.set()
        self.service.stop()

    def get(self, target):
        client = HttpClient(lambda: self.net.connect("serve"))
        try:
            return client.get(target)
        finally:
            client.close()

    def occupy(self, count):
        threads = []
        for _ in range(count):
            client = SoapHttpClient(
                lambda: self.net.connect("serve"), encoding=XMLEncoding()
            )

            def call(c=client):
                try:
                    c.call(SoapEnvelope.wrap(element("Block")))
                finally:
                    c.close()

            thread = threading.Thread(target=call, daemon=True)
            thread.start()
            threads.append(thread)
        return threads

    def test_readyz_saturates_while_healthz_stays_live(self):
        assert self.get("/healthz").status == 200
        ready = self.get("/readyz")
        assert ready.status == 200
        assert b'"status": "ready"' in ready.body

        # 1 executing + 3 queued >= ceil(0.75 * 4): readiness flips
        threads = self.occupy(4)
        wait_until(lambda: self.service.pool.queue_size >= 3)
        saturated = self.get("/readyz")
        assert saturated.status == 503
        assert b'"status": "saturated"' in saturated.body
        assert saturated.headers.get("Retry-After") is not None
        # liveness is unaffected: the process is healthy, just busy
        assert self.get("/healthz").status == 200

        self.release.set()
        for thread in threads:
            thread.join(timeout=10)
        wait_until(lambda: self.get("/readyz").status == 200)

    def test_probe_gates_saturated_replica_out_of_selection(self):
        network, services, replicas = memory_cluster(2, workers=1, queue_depth=4)
        try:
            balancer = Balancer(
                [
                    Replica("blocked", lambda: self.net.connect("serve")),
                    replicas[0],
                ]
            )
            self.occupy(4)
            wait_until(lambda: self.service.pool.queue_size >= 3)
            verdicts = balancer.probe_all(timeout=2.0)
            assert verdicts == {"blocked": "saturated", "node-0": "ready"}
            # the preferred pass skips the saturated replica entirely
            for _ in range(4):
                chosen = balancer.acquire()
                assert chosen.name == "node-0"
                balancer.release(chosen, ok=True)
        finally:
            self.release.set()
            for service in services:
                service.stop()

    def test_probe_marks_dead_replica_down(self):
        network, services, replicas = memory_cluster(2)
        balancer = Balancer(replicas)
        services[1].stop()
        try:
            verdicts = balancer.probe_all(timeout=2.0)
            assert verdicts == {"node-0": "ready", "node-1": "down"}
            assert not balancer.state("node-1").live
            for _ in range(4):
                chosen = balancer.acquire()
                assert chosen.name == "node-0"
                balancer.release(chosen, ok=True)
        finally:
            services[0].stop()


class TestResponseCache:
    def make(self, **kwargs):
        self.now = [0.0]
        kwargs.setdefault("clock", lambda: self.now[0])
        return ResponseCache(**kwargs)

    def test_ttl_expires_on_read(self):
        cache = self.make(ttl_seconds=5.0)
        cache.put("k", "v", 10)
        assert cache.get("k") == "v"
        self.now[0] = 4.9
        assert cache.get("k") == "v"
        self.now[0] = 5.1
        assert cache.get("k") is None
        assert cache.hits == 2 and cache.misses == 1 and cache.evictions == 1

    def test_lru_bytes_eviction(self):
        cache = self.make(max_bytes=100, ttl_seconds=None)
        cache.put("a", "A", 40)
        cache.put("b", "B", 40)
        assert cache.get("a") == "A"  # refresh a: b becomes LRU
        cache.put("c", "C", 40)
        assert cache.get("b") is None
        assert cache.get("a") == "A" and cache.get("c") == "C"
        assert cache.bytes_used == 80

    def test_replace_is_not_an_eviction_and_oversized_not_stored(self):
        cache = self.make(max_bytes=100, ttl_seconds=None)
        cache.put("k", "v1", 10)
        cache.put("k", "v2", 20)
        assert cache.get("k") == "v2"
        assert cache.evictions == 0 and cache.bytes_used == 20
        cache.put("huge", "x", 101)
        assert cache.get("huge") is None
        assert cache.bytes_used == 20

    def test_single_flight_coalesces_concurrent_misses(self):
        cache = self.make(ttl_seconds=None)
        loads = [0]
        gate = threading.Event()
        outcomes = []

        def loader():
            loads[0] += 1
            gate.wait(timeout=5)
            return "value"

        def worker():
            value, outcome = cache.get_or_load("k", loader, size_of=lambda v: 5)
            outcomes.append((value, outcome))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        wait_until(lambda: cache.coalesced == 3)
        gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert loads[0] == 1
        assert sorted(o for _, o in outcomes) == ["coalesced"] * 3 + ["miss"]
        assert all(v == "value" for v, _ in outcomes)
        value, outcome = cache.get_or_load("k", loader)
        assert (value, outcome) == ("value", "hit")

    def test_leader_error_propagates_to_followers_and_caches_nothing(self):
        cache = self.make(ttl_seconds=None)
        gate = threading.Event()
        errors = []

        def loader():
            gate.wait(timeout=5)
            raise RuntimeError("backend down")

        def worker():
            try:
                cache.get_or_load("k", loader)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        wait_until(lambda: cache.coalesced == 2)
        gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert errors == ["backend down"] * 3
        assert len(cache) == 0

    def test_request_key_covers_operation_and_body(self):
        assert request_key("Op", b"x") == request_key("Op", b"x")
        assert request_key("Op", b"x") != request_key("Op", b"y")
        assert request_key("Op", b"x") != request_key("Other", b"x")
        policy = XMLEncoding()
        assert envelope_key(echo_envelope(1), policy) == envelope_key(
            echo_envelope(1), policy
        )
        assert envelope_key(echo_envelope(1), policy) != envelope_key(
            echo_envelope(2), policy
        )

    def test_warm_hit_makes_zero_upstream_exchanges(self):
        network, services, replicas = memory_cluster(2)
        try:
            balancer = Balancer(replicas)
            client = CachingClient(
                FederatedClient(balancer), ResponseCache(ttl_seconds=None)
            )
            first = client.call(echo_envelope(7))
            upstream = balancer.upstream_requests
            second = client.call(echo_envelope(7))
            assert balancer.upstream_requests == upstream
            assert second is first  # the cached object itself
            client.close()
        finally:
            for service in services:
                service.stop()


class TestFailover:
    def test_kill_one_replica_mid_closed_loop_loses_nothing(self):
        network, services, replicas = memory_cluster(3)
        balancer = Balancer(
            replicas, policy=RoundRobinPolicy(), breaker_threshold=1
        )
        calls = [0]
        lock = threading.Lock()
        kill = threading.Event()

        def killer():
            kill.wait(timeout=10)
            services[1].stop()

        killer_thread = threading.Thread(target=killer, daemon=True)
        killer_thread.start()
        try:

            def call_factory():
                fed = FederatedClient(balancer)

                def call(index: int):
                    with lock:
                        calls[0] += 1
                        if calls[0] == 20:
                            kill.set()
                    fed.call(echo_envelope(index))

                call.close = fed.close
                return call

            result = closed_loop(
                call_factory, clients=8, requests_per_client=10, seed=3
            )
        finally:
            kill.set()
            killer_thread.join(timeout=10)
            for service in (services[0], services[2]):
                service.stop()
        assert result.failed == 0
        assert result.offered == result.completed + result.shed + result.failed
        assert result.completed == 80
        failovers = balancer.metrics.counter("fed_failovers_total").snapshot()
        assert failovers >= 1
        # The breaker must have tripped on the dead replica.  Its *final*
        # state is racy: an exchange that connected before the kill can
        # complete after the breaker opened and re-close the circuit.
        opened = balancer.metrics.counter(
            "fed_circuit_open_total", labels={"replica": "node-1"}
        ).snapshot()
        assert opened >= 1

    def test_circuit_recloses_after_replica_recovers(self):
        network, services, replicas = memory_cluster(2)
        balancer = Balancer(
            replicas,
            policy=RoundRobinPolicy(),
            breaker_threshold=1,
            breaker_cooldown=0.05,
        )
        fed = FederatedClient(balancer)
        try:
            for index in range(4):
                fed.call(echo_envelope(index))
            services[1].stop()
            for index in range(4):
                fed.call(echo_envelope(index))
            assert balancer.state("node-1").circuit == CIRCUIT_OPEN

            # respawn on the same address (the old listener unregistered)
            services[1] = SoapServeService(
                network.listen("node-1"),
                fed_dispatcher(blob_size=1 << 14),
                config=ServeConfig(workers=2, queue_depth=8),
                name="node-1b",
            ).start()
            time.sleep(0.06)  # breaker cooldown lapses
            for index in range(8):
                fed.call(echo_envelope(index))
            assert balancer.state("node-1").circuit == CIRCUIT_CLOSED
            assert balancer.state("node-1").completed >= 1
        finally:
            fed.close()
            for service in services:
                service.stop()

    def test_failover_under_seeded_fault_schedule_is_deterministic(self):
        """Satellite: replica failover under repro.netsim.faults."""
        profile = FaultProfile(name="flaky", reset_rate=0.35, truncate_rate=0.15)

        def run(seed):
            network, services, replicas = memory_cluster(3)
            schedule = FaultSchedule(profile, seed=seed)
            # node-0's link is lossy; the other two are clean
            flaky = Replica(
                "node-0", faulty_connect(replicas[0].connect, schedule)
            )
            # cooldown longer than the run: once the flaky link's circuit
            # opens it stays open, so routing (and hence the number of
            # operations drawn from the fault stream) is deterministic
            balancer = Balancer(
                [flaky, replicas[1], replicas[2]],
                policy=RoundRobinPolicy(),
                breaker_threshold=2,
                breaker_cooldown=1000.0,
            )
            fed = FederatedClient(balancer, retry=RetryPolicy(max_attempts=5))
            completed = 0
            try:
                for index in range(30):
                    response = fed.call(echo_envelope(index))
                    assert response.body_root.name.local == "EchoResponse"
                    completed += 1
            finally:
                fed.close()
                for service in services:
                    service.stop()
            return completed, schedule.faults_injected, schedule.injected

        completed_a, faults_a, log_a = run(seed=11)
        completed_b, faults_b, log_b = run(seed=11)
        assert completed_a == completed_b == 30
        assert faults_a == faults_b >= 1
        assert log_a == log_b  # the fault stream itself replays exactly

    def test_replay_false_makes_exactly_one_attempt(self):
        network, services, replicas = memory_cluster(2)
        services[0].stop()
        services[1].stop()
        balancer = Balancer(replicas)
        fed = FederatedClient(balancer, replay=False)
        try:
            with pytest.raises(TransportError):
                fed.call(echo_envelope(1))
        except RetryBudgetExhausted:  # pragma: no cover
            pytest.fail("replay=False must not retry")
        finally:
            fed.close()
        assert balancer.upstream_requests == 1


class TestStriping:
    def sources_for(self, blob, names=("s0", "s1", "s2"), delay=0.0):
        def make(name):
            def fetch(offset, length):
                if delay:
                    time.sleep(delay)  # model wire time so pullers interleave
                return blob[offset : offset + length]

            return (name, fetch)

        return [make(name) for name in names]

    def test_plan_covers_the_size_exactly(self):
        stripes = plan_stripes(100, 32)
        assert [(i, o, n) for i, o, n in stripes] == [
            (0, 0, 32),
            (1, 32, 32),
            (2, 64, 32),
            (3, 96, 4),
        ]

    def test_reassembles_from_multiple_sources_with_digests(self):
        blob = fed_blob(size=1 << 15)
        data, stats = striped_fetch(
            self.sources_for(blob, delay=0.005),
            len(blob),
            stripe_size=4096,
            digests=stripe_digests(blob, 4096),
        )
        assert data == blob
        assert stats.total_bytes == len(blob)
        assert sum(stats.stripes_by_source.values()) == stats.stripes_total == 8
        assert len(stats.stripes_by_source) >= 2

    def test_failing_source_requeues_to_survivors(self):
        blob = fed_blob(size=1 << 14)
        sources = self.sources_for(blob, names=("good-0", "good-1"), delay=0.003)

        def bad_fetch(offset, length):
            raise IOError("link down")

        data, stats = striped_fetch(
            sources + [("bad", bad_fetch)], len(blob), stripe_size=2048
        )
        assert data == blob
        assert "bad" in stats.failed_sources
        assert "bad" not in stats.stripes_by_source

    def test_corrupt_stripe_fails_verification_and_reroutes(self):
        blob = fed_blob(size=1 << 14)
        corrupt = bytearray(blob)
        corrupt[5000] ^= 0xFF

        def corrupt_fetch(offset, length):
            return bytes(corrupt[offset : offset + length])

        data, stats = striped_fetch(
            [("corrupt", corrupt_fetch)]
            + self.sources_for(blob, names=("clean",), delay=0.003),
            len(blob),
            stripe_size=2048,
            digests=stripe_digests(blob, 2048),
        )
        assert data == blob
        assert "corrupt" in stats.failed_sources
        assert stats.requeued_stripes >= 1

    def test_all_sources_corrupt_raises(self):
        blob = fed_blob(size=1 << 12)
        wrong = bytes(len(blob))

        def liar(offset, length):
            return wrong[offset : offset + length]

        with pytest.raises((StripeVerificationError, GridFTPError)):
            striped_fetch(
                [("liar", liar)],
                len(blob),
                stripe_size=1024,
                stripe_timeout=2.0,
                digests=stripe_digests(blob, 1024),
            )

    def test_stalled_sources_raise_stripe_timeout(self):
        def hang(offset, length):
            time.sleep(30)
            return b""

        with pytest.raises(StripeTimeout):
            striped_fetch([("stuck", hang)], 4096, stripe_size=1024, stripe_timeout=0.2)

    def test_end_to_end_over_replicas(self):
        network, services, replicas = memory_cluster(3, blob_size=1 << 14)
        try:
            blob = fed_blob(size=1 << 14)
            clients = []

            def make_fetch(replica):
                fed = FederatedClient(Balancer([replica]))
                clients.append(fed)

                def fetch(offset, length):
                    return decode_chunk(
                        fed.call(
                            SoapEnvelope.wrap(
                                element(
                                    "GetChunk",
                                    leaf("offset", offset, "int"),
                                    leaf("length", length, "int"),
                                )
                            )
                        )
                    )

                return fetch

            sources = [(replica.name, make_fetch(replica)) for replica in replicas]
            data, stats = striped_fetch(
                sources, len(blob), stripe_size=2048,
                digests=stripe_digests(blob, 2048),
            )
            assert data == blob
            for fed in clients:
                fed.close()
        finally:
            for service in services:
                service.stop()


class TestNodeProcesses:
    """Satellite: ephemeral-port discovery is atomic — no sleep-polling."""

    def test_address_property_is_live_before_start(self):
        from repro.transport.sockets import TcpListener

        listener = TcpListener(host="127.0.0.1", port=0)
        service = SoapServeService(listener, fed_dispatcher(blob_size=1 << 12))
        try:
            host, port = service.address
            assert port != 0  # bound (and listening) before start()
        finally:
            service.start()
            service.stop()

    def test_spawned_cluster_addresses_work_immediately(self):
        nodes = spawn_nodes(2, blob_size=1 << 12)
        try:
            assert all(node.port != 0 for node in nodes)
            assert len({node.port for node in nodes}) == 2
            balancer = Balancer([node.replica() for node in nodes])
            fed = FederatedClient(balancer)
            try:
                for index in range(4):
                    response = fed.call(echo_envelope(index))
                    assert response.body_root.name.local == "EchoResponse"
            finally:
                fed.close()
            assert balancer.probe_all(timeout=3.0) == {
                "fed-node-0": "ready",
                "fed-node-1": "ready",
            }
        finally:
            for node in nodes:
                node.stop()
        assert all(not node.alive for node in nodes)
