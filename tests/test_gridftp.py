"""Integration tests for the GridFTP-like striped transfer service."""

import itertools
import os

import numpy as np
import pytest

from repro.gridftp import (
    AuthenticationError,
    GridFTPClient,
    GridFTPError,
    GridFTPServer,
    HostCredential,
    client_handshake,
    server_handshake,
)
from repro.transport import MemoryNetwork, memory_pipe


@pytest.fixture()
def grid():
    """A running server + client factory over a memory network."""
    net = MemoryNetwork()
    credential = HostCredential.generate()
    counter = itertools.count()

    def data_listener_factory():
        name = f"gftp-data-{next(counter)}"
        return name, net.listen(name)

    server = GridFTPServer(net.listen("gftp"), data_listener_factory, credential)
    server.start()

    def make_client(cred=credential):
        return GridFTPClient(lambda: net.connect("gftp"), net.connect, cred)

    yield server, make_client
    server.stop()


class TestAuth:
    def test_mutual_handshake(self):
        cred = HostCredential.generate()
        a, b = memory_pipe()
        import threading

        keys = {}

        def server():
            keys["server"] = server_handshake(b, cred)

        t = threading.Thread(target=server)
        t.start()
        keys["client"] = client_handshake(a, cred)
        t.join(timeout=5)
        assert keys["client"] == keys["server"]

    def test_wrong_credential_rejected(self, grid):
        _server, make_client = grid
        with pytest.raises(AuthenticationError):
            make_client(HostCredential.generate())

    def test_round_trip_count_recorded(self, grid):
        _server, make_client = grid
        client = make_client()
        assert client.stats.control_round_trips == 3  # handshake
        client.quit()


class TestTransfer:
    def test_size_command(self, grid):
        server, make_client = grid
        server.publish("/data/a.nc", b"x" * 12345)
        client = make_client()
        assert client.size("/data/a.nc") == 12345
        client.quit()

    def test_missing_file(self, grid):
        _server, make_client = grid
        client = make_client()
        with pytest.raises(GridFTPError, match="550"):
            client.size("/nope")
        with pytest.raises(GridFTPError, match="550"):
            client.retrieve("/nope")
        client.quit()

    @pytest.mark.parametrize("n_streams", [1, 2, 4, 16])
    def test_retrieve_integrity(self, grid, n_streams):
        server, make_client = grid
        payload = np.random.default_rng(n_streams).bytes(3_000_000)
        server.publish("/blob", payload)
        client = make_client()
        out = client.retrieve("/blob", n_streams)
        assert out == payload
        assert client.stats.n_streams == n_streams
        assert client.stats.data_bytes == len(payload)
        client.quit()

    def test_empty_file(self, grid):
        server, make_client = grid
        server.publish("/empty", b"")
        client = make_client()
        assert client.retrieve("/empty", 4) == b""
        client.quit()

    def test_file_smaller_than_block(self, grid):
        server, make_client = grid
        server.publish("/small", b"tiny payload")
        client = make_client()
        assert client.retrieve("/small", 4) == b"tiny payload"
        client.quit()

    def test_single_stream_is_in_order(self, grid):
        server, make_client = grid
        server.publish("/big", os.urandom(2_000_000))
        client = make_client()
        client.retrieve("/big", 1)
        assert client.stats.out_of_order_blocks == 0
        client.quit()

    def test_parallel_streams_reorder(self, grid):
        """With several streams, out-of-order arrivals are the norm —
        the receiver seeks the paper's Figure 5 discussion describes."""
        server, make_client = grid
        server.publish("/big", os.urandom(8_000_000))
        client = make_client()
        client.retrieve("/big", 8)
        assert client.stats.blocks_received == -(-8_000_000 // 262144)
        assert client.stats.out_of_order_blocks > 0
        client.quit()

    def test_header_overhead_accounted(self, grid):
        server, make_client = grid
        server.publish("/b", b"z" * 1_000_000)
        client = make_client()
        client.retrieve("/b", 2)
        assert client.stats.block_header_bytes >= client.stats.blocks_received * 13
        assert client.stats.wire_bytes > client.stats.data_bytes
        client.quit()

    def test_multiple_transfers_one_session(self, grid):
        server, make_client = grid
        server.publish("/a", b"A" * 500_000)
        server.publish("/b", b"B" * 500_000)
        client = make_client()
        assert client.retrieve("/a", 2) == b"A" * 500_000
        assert client.retrieve("/b", 4) == b"B" * 500_000
        client.quit()

    def test_bad_stream_count(self, grid):
        server, make_client = grid
        server.publish("/x", b"x")
        client = make_client()
        with pytest.raises(GridFTPError, match="501"):
            client.retrieve("/x", 100)
        client.quit()

    def test_unknown_command(self, grid):
        _server, make_client = grid
        client = make_client()
        assert client._command("FEAT").startswith("500")
        client.quit()

    def test_netcdf_end_to_end(self, grid):
        """The separated scheme's actual payload: a netCDF file."""
        from repro.netcdf import Dataset, read_dataset_bytes, write_dataset_bytes

        ds = Dataset()
        ds.create_variable("values", np.linspace(0, 1, 50000), ("model",))
        blob = write_dataset_bytes(ds)
        server, make_client = grid
        server.publish("/run1.nc", blob)
        client = make_client()
        fetched = client.retrieve("/run1.nc", 4)
        out = read_dataset_bytes(fetched)
        np.testing.assert_allclose(out.variables["values"].data, np.linspace(0, 1, 50000))
        client.quit()
