"""Tests for the experiment harness (reduced sizes for speed)."""

import os

import pytest

from repro.harness import table1
from repro.harness.calibration import cpu_scale, DEFAULT_CPU_SCALE
from repro.harness.overheads import (
    http_get_bytes,
    http_post_bytes,
    http_response_bytes,
    tcp_message_bytes,
)
from repro.harness.report import ExperimentResult, ShapeCheck, render_table
from repro.harness.runners import (
    SCHEME_BXSA_TCP,
    SCHEME_SOAP_GRIDFTP,
    SCHEME_SOAP_HTTP_CHANNEL,
    SCHEME_XML_HTTP,
    run_scheme,
)
from repro.netsim import LAN, WAN
from repro.workloads.lead import lead_dataset


class TestOverheads:
    def test_tcp_framing_small_constant(self):
        overhead = tcp_message_bytes(1000, "application/bxsa") - 1000
        assert 10 <= overhead <= 40  # a handful of bytes, not an HTTP header

    def test_http_overheads_exceed_tcp(self):
        assert http_post_bytes(1000, "text/xml") > tcp_message_bytes(1000, "text/xml")

    def test_http_get_is_small(self):
        assert http_get_bytes("/run.nc") < 200

    def test_response_headers_counted(self):
        assert http_response_bytes(0, "text/xml") > 50


class TestCalibration:
    def test_default(self):
        os.environ.pop("REPRO_CPU_SCALE", None)
        assert cpu_scale() == DEFAULT_CPU_SCALE

    def test_env_override(self):
        os.environ["REPRO_CPU_SCALE"] = "2.5"
        try:
            assert cpu_scale() == 2.5
        finally:
            del os.environ["REPRO_CPU_SCALE"]

    def test_invalid_rejected(self):
        os.environ["REPRO_CPU_SCALE"] = "-1"
        try:
            with pytest.raises(ValueError):
                cpu_scale()
        finally:
            del os.environ["REPRO_CPU_SCALE"]


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # rectangular

    def test_experiment_render_includes_checks(self):
        result = ExperimentResult(
            "Table X",
            "demo",
            ["c"],
            [["v"]],
            checks=[ShapeCheck("always", True, "detail")],
            notes=["a note"],
        )
        text = result.render()
        assert "[PASS] always" in text
        assert "note: a note" in text
        assert result.all_checks_pass

    def test_failed_check_renders_fail(self):
        check = ShapeCheck("never", False)
        assert "[FAIL]" in check.render()


class TestSchemeRunners:
    @pytest.mark.parametrize(
        "scheme",
        [SCHEME_BXSA_TCP, SCHEME_XML_HTTP, SCHEME_SOAP_HTTP_CHANNEL],
    )
    @pytest.mark.parametrize("profile", [LAN, WAN])
    def test_runs_and_decomposes(self, scheme, profile):
        result = run_scheme(scheme, lead_dataset(200), profile, repeats=1)
        assert result.response_time > 0
        assert result.model_size == 200
        labels = dict(result.breakdown.items())
        assert any(k.startswith("wire:") for k in labels)
        assert result.request_wire_bytes > 0

    def test_gridftp_runner_records_streams(self):
        result = run_scheme(
            SCHEME_SOAP_GRIDFTP, lead_dataset(500), LAN, n_streams=4, repeats=1
        )
        assert result.n_streams == 4
        assert result.label.endswith("(4)")
        assert result.breakdown.get("gsi crypto") > 0

    def test_bxsa_beats_xml_on_cpu(self):
        bxsa = run_scheme(SCHEME_BXSA_TCP, lead_dataset(2000), LAN, repeats=3)
        xml = run_scheme(SCHEME_XML_HTTP, lead_dataset(2000), LAN, repeats=3)
        assert bxsa.response_time < xml.response_time
        assert bxsa.request_wire_bytes < xml.request_wire_bytes

    def test_wan_slower_than_lan(self):
        lan = run_scheme(SCHEME_BXSA_TCP, lead_dataset(5000), LAN, repeats=1)
        wan = run_scheme(SCHEME_BXSA_TCP, lead_dataset(5000), WAN, repeats=1)
        assert wan.response_time > lan.response_time

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_scheme("smoke-signals", lead_dataset(1), LAN)

    def test_bandwidth_metric(self):
        result = run_scheme(SCHEME_BXSA_TCP, lead_dataset(1000), LAN, repeats=1)
        assert result.bandwidth_pairs_per_sec == pytest.approx(
            1000 / result.response_time
        )


class TestTable1:
    def test_all_checks_pass(self):
        result = table1.run(model_size=1000)
        assert result.all_checks_pass, result.render()

    def test_rows_cover_all_formats(self):
        result = table1.run(model_size=200)
        formats = [row[0] for row in result.rows]
        assert formats == ["Native representation", "BXSA", "netCDF", "XML 1.0"]

    def test_sizes_scale_with_model_size(self):
        small = table1.measure_sizes(100)
        large = table1.measure_sizes(1000)
        for fmt in small:
            assert large[fmt] > small[fmt]


class TestFiguresQuick:
    """Reduced-size smoke runs of the figure harnesses (the full sweeps run
    in benchmarks/)."""

    def test_figure4_reduced(self):
        from repro.harness import figure4

        result = figure4.run(sizes=[0, 500, 1000])
        assert result.experiment_id == "Figure 4"
        assert len(result.rows) == 3
        # fastest scheme check must hold even on the reduced sweep
        assert result.checks[0].passed, result.render()

    def test_figure5_reduced_with_xml_cap(self):
        from repro.harness import figure5

        result = figure5.run(sizes=[1365, 21840], xml_size_cap=1365)
        xml_column = [row[-1] for row in result.rows]
        assert xml_column[1] == "-"  # capped entries render as gaps

    def test_figure6_reduced(self):
        from repro.harness import figure6

        result = figure6.run(sizes=[1365, 21840])
        assert result.experiment_id == "Figure 6"
        assert len(result.columns) == 6


class TestMeasurementSubstrate:
    def test_median_odd_samples(self):
        from repro.harness.measure import median_seconds

        assert median_seconds([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_samples_averages_the_middle_pair(self):
        """The seed returned the *upper* middle sample for even counts —
        every even-repeat measurement was biased toward its slower half."""
        from repro.harness.measure import median_seconds

        assert median_seconds([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert median_seconds([4.0, 1.0]) == 2.5  # unsorted input

    def test_median_rejects_empty(self):
        from repro.harness.measure import median_seconds

        with pytest.raises(ValueError):
            median_seconds([])

    def test_timed_median_runs_and_scales(self, monkeypatch):
        from repro.harness import measure

        monkeypatch.setenv("REPRO_CPU_SCALE", "2.0")
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            return "result"

        seconds, result = measure.timed_median(fn, 4)
        assert result == "result"
        assert calls["n"] == 5  # warmup + 4 measured
        assert seconds > 0

    def test_timed_median_rejects_zero_repeats(self):
        from repro.harness.measure import timed_median

        with pytest.raises(ValueError):
            timed_median(lambda: None, 0)

    def test_legacy_alias_still_importable(self):
        from repro.harness.measure import timed_median
        from repro.harness.runners import _measure_median

        assert _measure_median is timed_median


class TestTraceOut:
    """The --trace-out knob: per-exchange span trees that reconcile."""

    def test_traced_run_noop_without_directory(self):
        from repro import obs
        from repro.harness.measure import traced_run

        assert traced_run(None, "x", lambda: 42) == 42
        assert obs.get_recorder() is obs.NULL_RECORDER

    def test_figure4_trace_out_reconciles(self, tmp_path):
        import json

        from repro.harness import figure4

        figure4.run(sizes=[0], trace_dir=str(tmp_path))
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 4  # one per scheme
        for path in files:
            doc = json.loads(path.read_text())
            assert doc["schema"] == "repro.obs.trace/1"
            assert doc["meta"]["figure"] == "figure4"
            root = doc["spans"][0]
            assert root["name"] == "exchange"
            assert root["attributes"]["repeats"] >= 1

            def walk(node):
                yield node
                for child in node["children"]:
                    yield from walk(child)

            segments = [
                n for n in walk(root) if n["attributes"].get("segment")
            ]
            assert segments, path.name
            assert all(n["modelled"] for n in segments)
            total = sum(n["seconds"] for n in segments)
            # the span tree must reconcile exactly with the reported
            # CPU + wire total the figure printed
            reported = root["attributes"]["reported_total_seconds"]
            assert total == pytest.approx(reported, rel=0, abs=1e-12)

    def test_trace_captures_measured_library_spans(self, tmp_path):
        import json

        from repro.harness import figure4

        figure4.run(sizes=[100], trace_dir=str(tmp_path))
        doc = json.loads(
            (tmp_path / "figure4-soap-bxsa-tcp-n100.json").read_text()
        )

        def walk(node):
            yield node
            for child in node["children"]:
                yield from walk(child)

        names = {n["name"] for n in walk(doc["spans"][0])}
        # measured codec spans and modelled wire segments share one tree
        assert "bxsa.encode" in names and "bxsa.decode" in names
        assert "wire: request" in names and "client encode" in names
