"""Unit tests for smaller paths not exercised elsewhere."""

import struct

import numpy as np
import pytest

from repro.netcdf import NetCDFFormatError, read_dataset_bytes
from repro.transport import MemoryNetwork
from repro.transport.http import HttpClient
from repro.xbs import TypeCode, XBSDecodeError, XBSReader, XBSWriter
from repro.xdm import TreeBuilder, element, leaf


class TestXBSReaderNavigation:
    def test_seek_and_tell(self):
        w = XBSWriter()
        w.write_int32(1)
        w.write_int32(2)
        r = XBSReader(w.getvalue())
        assert r.read_int32() == 1
        assert r.tell() == 4
        r.seek(0)
        assert r.read_int32() == 1
        r.skip(4)
        assert r.at_end()

    def test_seek_out_of_range(self):
        r = XBSReader(b"1234")
        with pytest.raises(XBSDecodeError):
            r.seek(5)
        with pytest.raises(XBSDecodeError):
            r.skip(5)

    def test_remaining(self):
        r = XBSReader(b"123456")
        r.skip(2)
        assert r.remaining == 4

    def test_string_scalar_through_generic_api(self):
        w = XBSWriter()
        w.write_scalar(TypeCode.STRING, "via generic")
        r = XBSReader(w.getvalue())
        assert r.read_scalar(TypeCode.STRING) == "via generic"

    def test_writer_invalid_byte_order(self):
        from repro.xbs import XBSEncodeError

        with pytest.raises(XBSEncodeError):
            XBSWriter(byte_order=7)
        with pytest.raises(XBSDecodeError):
            XBSReader(b"", byte_order=7)


class TestNetCDF64BitOffsets:
    def _cdf2_blob(self) -> bytes:
        """Hand-craft a minimal CDF-2 (64-bit offset) file: one dimension,
        one int variable of two elements."""
        out = bytearray()
        out += b"CDF\x02"
        out += struct.pack(">i", 0)  # numrecs
        out += struct.pack(">ii", 0x0A, 1)  # dim list, 1 dim
        out += struct.pack(">i", 1) + b"n\x00\x00\x00"  # name "n" padded
        out += struct.pack(">i", 2)  # length 2
        out += struct.pack(">ii", 0, 0)  # no global attributes
        out += struct.pack(">ii", 0x0B, 1)  # var list, 1 var
        out += struct.pack(">i", 1) + b"v\x00\x00\x00"  # name "v"
        out += struct.pack(">i", 1)  # rank 1
        out += struct.pack(">i", 0)  # dim id 0
        out += struct.pack(">ii", 0, 0)  # no var attributes
        out += struct.pack(">ii", 4, 8)  # NC_INT, vsize 8
        begin_pos = len(out)
        out += struct.pack(">q", 0)  # begin placeholder (8 bytes!)
        struct.pack_into(">q", out, begin_pos, len(out))
        out += struct.pack(">ii", 7, 9)  # the data
        return bytes(out)

    def test_cdf2_reader(self):
        ds = read_dataset_bytes(self._cdf2_blob())
        np.testing.assert_array_equal(ds.variables["v"].data, [7, 9])

    def test_cdf2_truncated_begin(self):
        blob = self._cdf2_blob()
        with pytest.raises(NetCDFFormatError):
            read_dataset_bytes(blob[:-10])


class TestHttpExtras:
    def test_head_request_on_data_channel(self):
        from repro.datachannel import HttpDataChannel

        net = MemoryNetwork()
        channel = HttpDataChannel(net.listen("w"), lambda: net.connect("w")).start()
        try:
            channel.publish("f.nc", b"payload")
            client = HttpClient(lambda: net.connect("w"))
            response = client.request("HEAD", "/f.nc")
            assert response.ok
            assert response.body == b""
            client.close()
        finally:
            channel.stop()

    def test_unpublish_gives_404(self):
        from repro.datachannel import HttpDataChannel
        from repro.datachannel.base import DataChannelError

        net = MemoryNetwork()
        channel = HttpDataChannel(net.listen("w"), lambda: net.connect("w")).start()
        try:
            url = channel.publish("gone.nc", b"x")
            channel.unpublish("gone.nc")
            with pytest.raises(DataChannelError, match="404"):
                channel.fetch(url)
        finally:
            channel.stop()

    def test_post_to_file_channel_rejected(self):
        from repro.datachannel import HttpDataChannel

        net = MemoryNetwork()
        channel = HttpDataChannel(net.listen("w"), lambda: net.connect("w")).start()
        try:
            client = HttpClient(lambda: net.connect("w"))
            assert client.post("/x", b"data").status == 405
            client.close()
        finally:
            channel.stop()


class TestScannerExtras:
    def test_namespace_table_of_non_element(self):
        from repro.bxsa import FrameScanner, encode
        from repro.xdm import doc

        blob = encode(doc(element("r")))
        assert FrameScanner(blob).namespace_table(0) == []

    def test_namespace_table_of_element(self):
        from repro.bxsa import FrameScanner, encode

        node = element("r", namespaces={"p": "urn:x"})
        scanner = FrameScanner(encode(node))
        assert scanner.namespace_table(0) == [("p", "urn:x")]


class TestEngineOneWay:
    def test_one_way_send_over_pipe(self):
        """The one-way MEP: fire a message, no response expected."""
        from repro.core import BXSAEncoding, SoapEngine, SoapEnvelope
        from repro.transport import memory_pipe
        from repro.transport.tcp_binding import TcpClientBinding, TcpServerBinding

        a, b = memory_pipe()
        sender = SoapEngine(BXSAEncoding(), TcpClientBinding(a))
        receiver = SoapEngine(BXSAEncoding(), TcpServerBinding(b))
        nbytes = sender.send(SoapEnvelope.wrap(element("Notify", leaf("seq", 1, "int"))))
        assert nbytes > 0
        envelope, content_type = receiver.receive()
        assert envelope.body_root.name.local == "Notify"
        assert content_type == "application/bxsa"


class TestBuilderExtras:
    def test_builder_pi_and_current(self):
        b = TreeBuilder()
        assert b.current is b.document  # document is the initial focus
        with b.element("r"):
            b.pi("target", "data")
            b.comment("note")
        root = b.document.root
        assert root.children[0].target == "target"

    def test_element_context_manager_restores_on_exception(self):
        b = TreeBuilder()
        with pytest.raises(RuntimeError):
            with b.element("a"):
                raise RuntimeError("boom")
        assert b.depth == 0  # the element was closed on the way out


class TestWsdlExtras:
    def test_make_client_unknown_encoding(self):
        from repro.core.wsdl import ServiceDescription

        desc = ServiceDescription(
            name="S",
            operations=("Op",),
            transport="tcp",
            encoding_content_type="application/x-unregistered",
            location="x",
        )
        with pytest.raises(ValueError, match="no encoding policy"):
            desc.make_client(lambda loc: (lambda: None))


class TestGridFTPPathEdge:
    def test_paths_with_spaces(self):
        import itertools

        from repro.gridftp import GridFTPClient, GridFTPServer, HostCredential
        from repro.transport import MemoryNetwork

        net = MemoryNetwork()
        cred = HostCredential.generate()
        counter = itertools.count()

        def factory():
            name = f"sp{next(counter)}"
            return name, net.listen(name)

        server = GridFTPServer(net.listen("spg"), factory, cred)
        server.publish("/dir with spaces/file.nc", b"spaced payload")
        server.start()
        try:
            client = GridFTPClient(lambda: net.connect("spg"), net.connect, cred)
            assert client.retrieve("/dir with spaces/file.nc", 2) == b"spaced payload"
            client.quit()
        finally:
            server.stop()
