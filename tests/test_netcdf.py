"""Unit and property tests for the from-scratch netCDF-3 codec."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import hypothesis.extra.numpy as hnp

from repro.netcdf import (
    Dataset,
    NetCDFError,
    NetCDFFormatError,
    read_dataset,
    read_dataset_bytes,
    write_dataset,
    write_dataset_bytes,
)


def lead_like_dataset(n=100):
    """The evaluation's dataset shape: an int index + double values."""
    ds = Dataset()
    ds.attributes["title"] = "LEAD-like atmospheric sample"
    ds.attributes["version"] = np.int32(3)
    ds.create_dimension("model", n)
    ds.create_variable(
        "index", np.arange(n, dtype="i4"), ("model",), {"units": "count"}
    )
    ds.create_variable(
        "values",
        np.linspace(250.0, 320.0, n),
        ("model",),
        {"units": "K", "valid_range": np.array([200.0, 350.0])},
    )
    return ds


class TestRoundTrip:
    def test_lead_like(self):
        ds = lead_like_dataset()
        out = read_dataset_bytes(write_dataset_bytes(ds))
        assert out.dimensions == {"model": 100}
        assert out.attributes["title"] == "LEAD-like atmospheric sample"
        assert out.attributes["version"] == 3
        np.testing.assert_array_equal(out.variables["index"].data, np.arange(100, dtype="i4"))
        np.testing.assert_allclose(
            out.variables["values"].data, np.linspace(250.0, 320.0, 100)
        )
        np.testing.assert_array_equal(
            out.variables["values"].attributes["valid_range"], [200.0, 350.0]
        )

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "sample.nc"
        n = write_dataset(lead_like_dataset(), path)
        assert path.stat().st_size == n
        out = read_dataset(path)
        assert set(out.variables) == {"index", "values"}

    @pytest.mark.parametrize("dtype", ["i1", "i2", "i4", "f4", "f8"])
    def test_all_external_types(self, dtype):
        ds = Dataset()
        data = np.arange(7).astype(dtype)
        ds.create_variable("v", data, ("n",))
        out = read_dataset_bytes(write_dataset_bytes(ds))
        np.testing.assert_array_equal(out.variables["v"].data, data)
        assert out.variables["v"].data.dtype == np.dtype(dtype)

    def test_multidimensional(self):
        ds = Dataset()
        data = np.arange(24, dtype="f8").reshape(2, 3, 4)
        ds.create_variable("cube", data, ("t", "y", "x"))
        out = read_dataset_bytes(write_dataset_bytes(ds))
        np.testing.assert_array_equal(out.variables["cube"].data, data)
        assert out.variables["cube"].dimensions == ("t", "y", "x")

    def test_scalar_variable(self):
        ds = Dataset()
        ds.create_variable("s", np.array(3.5), ())
        out = read_dataset_bytes(write_dataset_bytes(ds))
        assert float(out.variables["s"].data) == 3.5

    def test_shared_dimension(self):
        ds = Dataset()
        ds.create_dimension("n", 5)
        ds.create_variable("a", np.arange(5, dtype="i4"), ("n",))
        ds.create_variable("b", np.arange(5, dtype="f8"), ("n",))
        out = read_dataset_bytes(write_dataset_bytes(ds))
        assert out.dimensions == {"n": 5}

    def test_odd_sized_data_padded(self):
        """i1 data of non-multiple-of-4 length exercises the pad rules."""
        ds = Dataset()
        ds.create_variable("a", np.arange(5, dtype="i1"), ("n",))
        ds.create_variable("b", np.arange(3, dtype="i2"), ("m",))
        out = read_dataset_bytes(write_dataset_bytes(ds))
        np.testing.assert_array_equal(out.variables["a"].data, np.arange(5, dtype="i1"))
        np.testing.assert_array_equal(out.variables["b"].data, np.arange(3, dtype="i2"))

    def test_empty_dataset(self):
        out = read_dataset_bytes(write_dataset_bytes(Dataset()))
        assert out.dimensions == {}
        assert out.variables == {}


class TestFormatDetails:
    def test_magic_and_version(self):
        blob = write_dataset_bytes(lead_like_dataset())
        assert blob[:3] == b"CDF"
        assert blob[3] == 1

    def test_header_overhead_is_small(self):
        """Table 1 of the paper: netCDF overhead ≈ 2% at model size 1000."""
        n = 1000
        ds = Dataset()
        ds.create_dimension("model", n)
        ds.create_variable("index", np.arange(n, dtype="i4"), ("model",))
        ds.create_variable("values", np.linspace(0, 1, n), ("model",))
        blob = write_dataset_bytes(ds)
        native = n * 12
        overhead = (len(blob) - native) / native
        assert overhead < 0.03

    def test_big_endian_on_wire(self):
        ds = Dataset()
        ds.create_variable("v", np.array([1], dtype="i4"), ("n",))
        blob = write_dataset_bytes(ds)
        assert blob[-4:] == b"\x00\x00\x00\x01"


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(NetCDFFormatError, match="magic"):
            read_dataset_bytes(b"HDF5 something")

    def test_netcdf4_rejected_clearly(self):
        with pytest.raises(NetCDFFormatError):
            read_dataset_bytes(b"CDF\x05rest")

    def test_truncated(self):
        blob = write_dataset_bytes(lead_like_dataset())
        with pytest.raises(NetCDFFormatError):
            read_dataset_bytes(blob[: len(blob) // 2])

    def test_unlimited_dimension_rejected(self):
        import struct

        # hand-craft a header with a zero-length (record) dimension
        blob = (
            b"CDF\x01"
            + struct.pack(">i", 0)
            + struct.pack(">ii", 0x0A, 1)
            + struct.pack(">i", 4)
            + b"time"
            + struct.pack(">i", 0)  # length 0 = record dimension
            + struct.pack(">ii", 0, 0)
            + struct.pack(">ii", 0, 0)
        )
        with pytest.raises(NetCDFFormatError, match="unlimited"):
            read_dataset_bytes(blob)

    def test_int64_rejected_at_write(self):
        ds = Dataset()
        with pytest.raises(NetCDFFormatError):
            ds.create_variable("v", np.arange(3, dtype="i8"), ("n",))
            write_dataset_bytes(ds)

    def test_dimension_length_mismatch(self):
        ds = Dataset()
        ds.create_dimension("n", 5)
        with pytest.raises(NetCDFError):
            ds.create_variable("v", np.arange(4, dtype="i4"), ("n",))

    def test_duplicate_variable(self):
        ds = Dataset()
        ds.create_variable("v", np.arange(3, dtype="i4"), ("n",))
        with pytest.raises(NetCDFError):
            ds.create_variable("v", np.arange(3, dtype="i4"), ("n",))


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["i1", "i2", "i4", "f4", "f8"]),
            st.integers(0, 3),  # rank
        ),
        min_size=1,
        max_size=4,
    ),
    st.data(),
)
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_property_roundtrip(specs, data):
    ds = Dataset()
    for i, (dtype, rank) in enumerate(specs):
        shape = tuple(data.draw(st.integers(1, 4)) for _ in range(rank))
        arr = data.draw(
            hnp.arrays(
                np.dtype(dtype),
                shape,
                elements={"allow_nan": False} if dtype.startswith("f") else None,
            )
        )
        dims = tuple(f"d{i}_{axis}" for axis in range(rank))
        ds.create_variable(f"v{i}", arr, dims)
    out = read_dataset_bytes(write_dataset_bytes(ds))
    for name, var in ds.variables.items():
        np.testing.assert_array_equal(out.variables[name].data, var.data)
        assert out.variables[name].data.dtype == var.data.dtype
