"""Unit tests for the analytic TCP/disk model."""

import pytest

from repro.netsim import (
    LAN,
    WAN,
    DiskModel,
    LinkProfile,
    TimeBreakdown,
    connection_setup_time,
    request_response_time,
    steady_bandwidth,
    striped_transfer_time,
    transfer_time,
)
from repro.netsim.tcpmodel import aggregate_bandwidth


class TestBandwidth:
    def test_lan_capacity_limited(self):
        """On the LAN the window allows far more than the wire: capacity wins."""
        bw = steady_bandwidth(LAN, 1)
        assert bw == pytest.approx(LAN.capacity)
        assert LAN.window_limited_bandwidth > LAN.capacity

    def test_wan_window_limited(self):
        """On the WAN the untuned window is the binding constraint."""
        bw = steady_bandwidth(WAN, 1)
        assert bw == pytest.approx(WAN.per_stream_window / WAN.rtt)
        assert bw < WAN.capacity

    def test_wan_parallel_streams_scale(self):
        """Parallel streams escape the per-stream window limit on the WAN
        (bounded by the shared path capacity, not by 16x a single stream)."""
        assert aggregate_bandwidth(WAN, 16) > 2 * aggregate_bandwidth(WAN, 1)
        assert aggregate_bandwidth(WAN, 16) <= WAN.capacity

    def test_lan_parallel_streams_do_not_help(self):
        """A single LAN stream already fills the path; 16 only add overhead."""
        assert aggregate_bandwidth(LAN, 16) < aggregate_bandwidth(LAN, 1)

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            steady_bandwidth(LAN, 0)


class TestTransferTime:
    def test_zero_bytes_is_propagation_only(self):
        assert transfer_time(LAN, 0) == pytest.approx(LAN.rtt / 2)

    def test_monotone_in_size(self):
        sizes = [0, 100, 10_000, 1_000_000, 100_000_000]
        times = [transfer_time(LAN, s) for s in sizes]
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_large_transfer_approaches_steady_bandwidth(self):
        nbytes = 512 * 1024 * 1024
        t = transfer_time(LAN, nbytes)
        effective = nbytes / t
        assert effective == pytest.approx(steady_bandwidth(LAN, 1), rel=0.05)

    def test_slow_start_penalty_visible_for_medium_transfers(self):
        nbytes = 200_000
        with_ss = transfer_time(WAN, nbytes, slow_start=True)
        without = transfer_time(WAN, nbytes, slow_start=False)
        assert with_ss > without

    def test_slow_start_negligible_for_huge_transfers(self):
        nbytes = 256 * 1024 * 1024
        with_ss = transfer_time(WAN, nbytes, slow_start=True)
        without = transfer_time(WAN, nbytes, slow_start=False)
        assert with_ss == pytest.approx(without, rel=0.02)

    def test_tiny_transfer_is_rtt_scale(self):
        t = transfer_time(WAN, 500)
        assert t < 3 * WAN.rtt

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(LAN, -1)


class TestStripedTransfer:
    def test_reorder_penalty_on_lan(self):
        nbytes = 16 * 1024 * 1024
        one = striped_transfer_time(LAN, nbytes, 1)
        sixteen = striped_transfer_time(LAN, nbytes, 16)
        assert sixteen > one  # the paper's LAN observation

    def test_parallelism_wins_on_wan(self):
        nbytes = 64 * 1024 * 1024
        one = striped_transfer_time(WAN, nbytes, 1)
        sixteen = striped_transfer_time(WAN, nbytes, 16)
        assert sixteen < one / 2  # the paper's WAN observation

    def test_disk_bottleneck_applies(self):
        slow_disk = DiskModel(rate=2e6)
        nbytes = 8 * 1024 * 1024
        free = striped_transfer_time(WAN, nbytes, 16)
        disked = striped_transfer_time(WAN, nbytes, 16, receiver_disk=slow_disk)
        assert disked > free
        assert disked >= nbytes / slow_disk.rate

    def test_single_stream_has_no_reorder_penalty(self):
        nbytes = 4 * 1024 * 1024
        assert striped_transfer_time(LAN, nbytes, 1) == pytest.approx(
            transfer_time(LAN, nbytes, 1)
        )


class TestRequestResponse:
    def test_includes_both_directions_and_setup(self):
        t = request_response_time(WAN, 1000, 1000, new_connection=True)
        # handshake (1 RTT) + two transfers (≥ 0.5 RTT propagation each)
        assert t >= 2 * WAN.rtt

    def test_reused_connection_cheaper(self):
        fresh = request_response_time(WAN, 1000, 1000, new_connection=True)
        reused = request_response_time(WAN, 1000, 1000, new_connection=False)
        assert fresh - reused == pytest.approx(WAN.rtt)

    def test_connection_setup_serial(self):
        assert connection_setup_time(WAN, 4, serial=True) == pytest.approx(4 * WAN.rtt)
        assert connection_setup_time(WAN, 4) == pytest.approx(WAN.rtt)


class TestProfiles:
    def test_paper_rtts(self):
        assert LAN.rtt == pytest.approx(0.2e-3)
        assert WAN.rtt == pytest.approx(5.75e-3)

    def test_wan_single_stream_plateau_matches_figure6(self):
        """Figure 6's single-stream schemes plateau near 4 MB/s."""
        bw = steady_bandwidth(WAN, 1)
        assert 3e6 < bw < 6e6

    def test_lan_single_stream_plateau_matches_figure5(self):
        """Figure 5's BXSA/TCP saturates near 10-12 MB/s."""
        bw = steady_bandwidth(LAN, 1)
        assert 9e6 < bw < 13e6

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            LinkProfile(name="bad", rtt=0, capacity=1, per_stream_window=1)


class TestTimeBreakdown:
    def test_charge_and_total(self):
        tb = TimeBreakdown()
        tb.charge("net", 0.5)
        tb.charge("cpu", 0.25)
        tb.charge("net", 0.5)
        assert tb.total == pytest.approx(1.25)
        assert tb.get("net") == pytest.approx(1.0)

    def test_measure_real_block(self):
        import time

        tb = TimeBreakdown()
        with tb.measure("sleep"):
            time.sleep(0.01)
        assert tb.get("sleep") >= 0.009

    def test_merge_and_scale(self):
        a = TimeBreakdown()
        a.charge("x", 1.0)
        b = TimeBreakdown()
        b.charge("x", 1.0)
        b.charge("y", 2.0)
        a.merge(b)
        assert a.get("x") == 2.0
        half = a.scaled(0.5)
        assert half.get("y") == 1.0
        assert a.get("y") == 2.0  # original untouched

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().charge("x", -1)
