"""Tests for the repro.obs tracing/metrics subsystem.

Covers the contract surface the rest of the library leans on: span
nesting (including across the threaded GridFTP stripe workers),
counter/histogram merge semantics, the no-op disabled path, and the
golden-file shape of the exported trace JSON.
"""

import itertools
import json
import os
import threading

import pytest

from repro import obs
from repro.gridftp import GridFTPClient, GridFTPServer, HostCredential
from repro.obs import (
    NULL_RECORDER,
    Counter,
    Histogram,
    MetricsRegistry,
    TraceRecorder,
    folded_stacks,
    get_recorder,
    recording,
    set_recorder,
    trace_dict,
    write_trace,
)
from repro.obs import propagation
from repro.transport import MemoryNetwork

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "obs_trace.json")


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestSpans:
    def test_nesting_on_one_thread(self):
        rec = TraceRecorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                assert rec.current_span() is inner
            assert rec.current_span() is outer
        assert rec.current_span() is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_explicit_parent_overrides_stack(self):
        rec = TraceRecorder()
        with rec.span("a") as a:
            pass
        with rec.span("b"):
            with rec.span("adopted", parent=a) as adopted:
                pass
        assert adopted.parent_id == a.span_id

    def test_exception_marks_span_and_propagates(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            with rec.span("bad"):
                raise ValueError("boom")
        (span,) = rec.spans
        assert span.attributes["error"] == "ValueError"
        assert span.end is not None

    def test_charge_makes_zero_wall_accounting_span(self):
        rec = TraceRecorder()
        with rec.span("exchange"):
            sp = rec.charge("wire: request", 0.125, segment=True)
        assert sp.modelled_seconds == 0.125
        assert sp.seconds == 0.125
        assert sp.wall_seconds == 0.0
        assert sp.parent_id == rec.spans[0].span_id

    def test_events_attach_to_current_span_or_orphans(self):
        rec = TraceRecorder()
        rec.event("lost", n=1)
        with rec.span("s") as sp:
            rec.event("found", n=2)
        assert [e.name for e in rec.orphan_events] == ["lost"]
        assert [e.name for e in sp.events] == ["found"]
        assert sp.events[0].attributes == {"n": 2}

    def test_timestamps_are_monotonic_via_injected_clock(self):
        clock = FakeClock()
        rec = TraceRecorder(clock=clock)
        with rec.span("a"):
            with rec.span("b"):
                pass
        a, b = rec.spans
        assert a.start < b.start < b.end < a.end


class TestThreadedStripeWorkers:
    """Span nesting/ordering under the real GridFTP stripe threads."""

    @pytest.fixture()
    def grid(self):
        net = MemoryNetwork()
        credential = HostCredential.generate()
        counter = itertools.count()

        def data_listener_factory():
            name = f"obs-data-{next(counter)}"
            return name, net.listen(name)

        server = GridFTPServer(net.listen("obs-gftp"), data_listener_factory, credential)
        server.start()
        yield server, lambda: GridFTPClient(
            lambda: net.connect("obs-gftp"), net.connect, credential
        )
        server.stop()

    def test_stripe_spans_adopt_cross_thread_parent(self, grid):
        server, make_client = grid
        blob = bytes(range(256)) * 64
        server.publish("/blob", blob)
        with recording(TraceRecorder()) as rec:
            client = make_client()
            assert client.retrieve("/blob", 4) == blob
            client.quit()
        retrieves = [s for s in rec.spans if s.name == "gridftp.retrieve"]
        stripes = [s for s in rec.spans if s.name == "gridftp.stripe"]
        assert len(retrieves) == 1
        assert len(stripes) == 4
        (retrieve,) = retrieves
        assert all(s.parent_id == retrieve.span_id for s in stripes)
        # workers really ran on other threads, and their spans closed
        # inside the retrieval's window
        assert any(s.thread != retrieve.thread for s in stripes)
        assert all(s.end is not None for s in stripes)
        assert all(retrieve.start <= s.start and s.end <= retrieve.end for s in stripes)
        assert {s.attributes["stripe"] for s in stripes} == {0, 1, 2, 3}
        assert sum(s.attributes["bytes"] for s in stripes) == len(blob)

    def test_stripe_spans_nest_in_exported_tree(self, grid):
        server, make_client = grid
        server.publish("/x", b"payload" * 100)
        with recording(TraceRecorder()) as rec:
            client = make_client()
            client.retrieve("/x", 2)
            client.quit()
        doc = trace_dict(rec)
        roots = {node["name"]: node for node in doc["spans"]}
        retrieve = roots["gridftp.retrieve"]
        assert [c["name"] for c in retrieve["children"]].count("gridftp.stripe") == 2

    def test_concurrent_unrelated_spans_do_not_cross_nest(self):
        rec = TraceRecorder()
        barrier = threading.Barrier(2)
        ids = {}

        def work(label):
            barrier.wait()
            with rec.span(label) as sp:
                with rec.span(f"{label}.child") as child:
                    ids[label] = (sp.span_id, child.parent_id)

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        for label, (span_id, child_parent) in ids.items():
            assert child_parent == span_id  # each thread nests on its own stack


class TestMetrics:
    def test_counter_add_and_merge(self):
        a, b = Counter("c"), Counter("c")
        a.add()
        a.add(4)
        b.add(10)
        a.merge(b)
        assert a.snapshot() == 15

    def test_counter_rejects_foreign_merge(self):
        with pytest.raises(TypeError):
            Counter("c").merge(Histogram("h"))

    def test_histogram_observe_and_stats(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["counts"] == [1, 1, 1]
        assert snap["min"] == 0.5 and snap["max"] == 50.0
        assert h.mean == pytest.approx(55.5 / 3)

    def test_histogram_merge_adds_buckets(self):
        a = Histogram("h", bounds=(1.0,))
        b = Histogram("h", bounds=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        b.observe(0.25)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [2, 1]
        assert a.min == 0.25 and a.max == 2.0

    def test_histogram_merge_refuses_different_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError, match="refusing to mix scales"):
            a.merge(b)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_registry_get_or_create_and_kind_collision(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").add(1)
        b.counter("n").add(2)
        b.counter("only-b").add(7)
        b.histogram("lat", bounds=(1.0,)).observe(0.5)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"] == {"n": 3, "only-b": 7}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_merge_is_thread_safe_under_contention(self):
        h = Histogram("h", bounds=(1.0,))

        def hammer():
            for _ in range(1000):
                h.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert h.count == 4000
        assert h.counts == [4000, 0]


class TestNullRecorderPath:
    def test_default_recorder_is_null(self):
        assert get_recorder() is NULL_RECORDER
        assert not NULL_RECORDER.enabled

    def test_disabled_facade_calls_are_inert(self):
        with obs.span("anything", kind="wire", whatever=1) as sp:
            assert sp.set("k", "v") is sp  # chainable no-op
            sp.add_event("e", 0.0)
        obs.event("nothing")
        obs.charge("wire: x", 1.0)
        obs.counter("c").add(5)
        obs.histogram("h").observe(1.0)
        assert get_recorder() is NULL_RECORDER  # nothing was installed

    def test_null_span_is_shared_singleton(self):
        a = NULL_RECORDER.span("a")
        b = NULL_RECORDER.charge("b", 1.0)
        assert a is b
        assert a.span_id is None

    def test_recording_installs_and_restores(self):
        rec = TraceRecorder()
        with recording(rec) as active:
            assert active is rec
            assert get_recorder() is rec
            with obs.span("visible"):
                pass
        assert get_recorder() is NULL_RECORDER
        assert [s.name for s in rec.spans] == ["visible"]

    def test_recording_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_disables(self):
        previous = set_recorder(TraceRecorder())
        try:
            assert get_recorder().enabled
            set_recorder(None)
            assert get_recorder() is NULL_RECORDER
        finally:
            set_recorder(previous)

    def test_worker_threads_see_the_active_recorder(self):
        seen = {}

        def worker():
            seen["recorder"] = get_recorder()

        with recording(TraceRecorder()) as rec:
            t = threading.Thread(target=worker)
            t.start()
            t.join(timeout=5)
        assert seen["recorder"] is rec


def build_reference_trace() -> TraceRecorder:
    """The fixed exchange pinned by the golden file (deterministic clock)."""
    rec = TraceRecorder(clock=FakeClock(0.001), service="golden", origin="deadbeef")
    with rec.span("exchange", kind="logical", scheme="soap-bxsa-tcp", model_size=100):
        with rec.span("bxsa.encode") as sp:
            sp.set("bytes", 1234)
        rec.charge("client encode", 0.002, kind="cpu", segment=True, repeats=7)
        rec.charge("wire: request", 0.0005, kind="wire", segment=True)
        with rec.span("soap.receive", kind="logical"):
            rec.event("retry.attempt", attempt=1, error="TransportClosed", backoff=0.0)
    rec.counter("resilience.retries").add(1)
    rec.histogram("harness.sample_seconds", bounds=(0.001, 0.01)).observe(0.002)
    return rec


class TestExport:
    def test_golden_trace_document(self):
        """The exported JSON document must match the committed golden file
        byte-for-byte (schema ``repro.obs.trace/1`` is a stable surface)."""
        document = trace_dict(build_reference_trace(), meta={"figure": "golden"})
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        assert document == golden

    def test_write_trace_round_trips(self, tmp_path):
        path = tmp_path / "t.json"
        written = write_trace(str(path), build_reference_trace(), meta={"figure": "golden"})
        assert json.loads(path.read_text()) == written

    def test_schema_and_relative_timestamps(self):
        doc = trace_dict(build_reference_trace())
        assert doc["schema"] == "repro.obs.trace/1"
        root = doc["spans"][0]
        assert root["start"] == 0.0  # relative to earliest span
        assert doc["meta"]["t0"] > 0.0  # raw origin preserved
        assert root["name"] == "exchange"
        names = [c["name"] for c in root["children"]]
        assert names == ["bxsa.encode", "client encode", "wire: request", "soap.receive"]

    def test_accounting_vs_measured_distinction(self):
        doc = trace_dict(build_reference_trace())
        children = {c["name"]: c for c in doc["spans"][0]["children"]}
        assert children["client encode"]["modelled"] is True
        assert "wall_seconds" not in children["client encode"]
        assert children["bxsa.encode"]["modelled"] is False
        assert children["bxsa.encode"]["wall_seconds"] > 0

    def test_folded_stacks(self):
        rec = TraceRecorder(clock=FakeClock(0.001))
        with rec.span("root"):
            with rec.span("leaf"):
                pass
        lines = folded_stacks(rec)
        assert any(line.startswith("root;leaf ") for line in lines)
        assert any(line.startswith("root ") for line in lines)
        # self time is never negative
        assert all(int(line.rsplit(" ", 1)[1]) >= 0 for line in lines)

    def test_orphan_parent_promoted_to_root(self):
        rec = TraceRecorder()
        with rec.span("parent"):
            with rec.span("child"):
                pass
        rec.spans = [s for s in rec.spans if s.name == "child"]
        doc = trace_dict(rec)
        assert [n["name"] for n in doc["spans"]] == ["child"]


class TestRetryObservability:
    def test_retry_attempts_become_span_events(self):
        from repro.transport.base import TransportError
        from repro.transport.resilience import RetryPolicy, retry_call

        calls = {"n": 0}

        def flaky(_attempt):
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransportError("flap")
            return "ok"

        with recording(TraceRecorder()) as rec:
            with rec.span("op") as sp:
                result = retry_call(
                    flaky, RetryPolicy(max_attempts=5, base_backoff=0.0, jitter=0.0)
                )
        assert result == "ok"
        attempts = [e for e in sp.events if e.name == "retry.attempt"]
        assert [e.attributes["attempt"] for e in attempts] == [1, 2]
        assert rec.metrics.counter("resilience.retries").value == 2

    def test_exhausted_budget_emits_terminal_event(self):
        from repro.transport.base import TransportError
        from repro.transport.resilience import (
            RetryBudgetExhausted,
            RetryPolicy,
            retry_call,
        )

        def always_fails(_attempt):
            raise TransportError("down")

        with recording(TraceRecorder()) as rec:
            with rec.span("op") as sp:
                with pytest.raises(RetryBudgetExhausted):
                    retry_call(
                        always_fails,
                        RetryPolicy(max_attempts=2, base_backoff=0.0, jitter=0.0),
                    )
        assert [e.name for e in sp.events] == ["retry.attempt", "retry.exhausted"]
        assert sp.events[-1].attributes == {"attempts": 2, "error": "TransportError"}


class TestTraceContext:
    """The cross-process context: wire format, joining, suppression."""

    def test_wire_round_trip(self):
        ctx = propagation.TraceContext(0xABCDEF, 7, True, "deadbeef")
        assert propagation.parse_context(propagation.format_context(ctx)) == ctx

    def test_no_parent_span_round_trips(self):
        ctx = propagation.TraceContext(5, None, False, "deadbeef")
        parsed = propagation.parse_context(propagation.format_context(ctx))
        assert parsed == ctx
        assert parsed.span_id is None
        assert parsed.sampled is False

    def test_empty_origin_round_trips(self):
        """Sampler-minted contexts never touched a recorder: no origin."""
        ctx = propagation.TraceContext(5, None, False, "")
        assert propagation.parse_context(propagation.format_context(ctx)) == ctx

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "garbage",
            "zz" * 16 + "-" + "00" * 8 + "-01-ab",  # non-hex trace id
            "0" * 32 + "-" + "0" * 16 + "-01-ab",  # zero trace id
            "1" * 31 + "-" + "0" * 16 + "-01-ab",  # short trace id
            "1" * 32 + "-" + "0" * 15 + "-01-ab",  # short span id
            "1" * 32 + "-" + "0" * 16 + "-1-ab",  # short flags
            "1" * 32 + "-" + "0" * 16 + "-01-xyz",  # non-hex origin
            "1" * 32 + "-" + "0" * 16 + "-01-AB",  # uppercase origin
            "1" * 32 + "-" + "0" * 16 + "-01",  # missing origin part
            "x" * (propagation.MAX_VALUE_LENGTH + 1),  # oversized
        ],
    )
    def test_malformed_values_parse_to_none(self, value):
        assert propagation.parse_context(value) is None

    def test_context_joined_span_becomes_remote_root(self):
        rec = TraceRecorder(clock=FakeClock(), origin="aaaaaaaa")
        ctx = propagation.TraceContext(99, 1234, True, "bbbbbbbb")
        with rec.span("http.serve", context=ctx) as sp:
            pass
        assert sp.trace_id == 99
        assert sp.parent_id is None  # remote parent: link, not local id
        assert sp.attributes["trace.remote_origin"] == "bbbbbbbb"
        assert sp.attributes["trace.remote_span"] == 1234

    def test_same_origin_context_adopts_local_parent(self):
        rec = TraceRecorder(clock=FakeClock(), origin="aaaaaaaa")
        with rec.span("serve") as parent:
            ctx = propagation.TraceContext(
                parent.trace_id, parent.span_id, True, rec.origin
            )
        with rec.span("worker", context=ctx) as sp:
            pass
        assert sp.parent_id == parent.span_id
        assert sp.trace_id == parent.trace_id
        assert "trace.remote_origin" not in sp.attributes

    def test_unsampled_context_suppresses_span(self):
        rec = TraceRecorder(clock=FakeClock())
        ctx = propagation.TraceContext(99, 1234, False, "bbbbbbbb")
        with rec.span("http.serve", context=ctx) as sp:
            pass
        assert sp.trace_id is None  # the shared null span
        assert rec.spans == []

    def test_children_inherit_trace_id(self):
        rec = TraceRecorder(clock=FakeClock())
        ctx = propagation.TraceContext(99, 1234, True, "bbbbbbbb")
        with rec.span("serve", context=ctx):
            with rec.span("inner") as inner:
                pass
        assert inner.trace_id == 99

    def test_thread_recorder_and_current_context(self):
        """Two recorders in one process: the thread pin wins."""
        shared = TraceRecorder(clock=FakeClock(), origin="aaaaaaaa")
        pinned = TraceRecorder(clock=FakeClock(), origin="bbbbbbbb")
        with recording(shared):
            assert obs.get_recorder() is shared
            with obs.thread_recorder(pinned):
                assert obs.get_recorder() is pinned
                with pinned.span("client") as sp:
                    ctx = obs.current_context()
                    assert ctx.trace_id == sp.trace_id
                    assert ctx.origin == "bbbbbbbb"
                    assert obs.current_trace_id() == f"{sp.trace_id:032x}"
            assert obs.get_recorder() is shared

    def test_use_context_forwards_ambient(self):
        ctx = propagation.TraceContext(42, None, False, "")
        with obs.use_context(ctx):
            assert obs.current_context() == ctx
        assert obs.current_context() is None


class TestOutboundContext:
    def test_span_wins_over_ambient(self):
        rec = TraceRecorder(clock=FakeClock(), origin="aaaaaaaa")
        with recording(rec):
            with rec.span("client.call") as sp:
                ctx = propagation.outbound_context(sp)
        assert ctx == propagation.TraceContext(sp.trace_id, sp.span_id, True, "aaaaaaaa")

    def test_ambient_negative_decision_is_forwarded(self):
        """Nothing recording locally, but a drop decision still travels."""
        dropped = propagation.TraceContext(42, None, False, "")
        with obs.use_context(dropped):
            assert propagation.outbound_context(None) == dropped

    def test_nothing_to_send(self):
        assert propagation.outbound_context(None) is None


class TestEnvelopeCarrier:
    def test_inject_extract_round_trip(self):
        from repro.core.envelope import SoapEnvelope
        from repro.xdm import element

        envelope = SoapEnvelope.wrap(element("Echo"))
        ctx = propagation.TraceContext(7, 9, True, "deadbeef")
        propagation.inject_envelope(envelope, ctx)
        assert propagation.extract_envelope(envelope) == ctx

    def test_reinjection_replaces_block(self):
        from repro.core.envelope import SoapEnvelope
        from repro.xdm import element

        envelope = SoapEnvelope.wrap(element("Echo"))
        propagation.inject_envelope(
            envelope, propagation.TraceContext(7, 9, True, "deadbeef")
        )
        ctx2 = propagation.TraceContext(7, 10, True, "deadbeef")
        propagation.inject_envelope(envelope, ctx2)
        blocks = [
            b
            for b in envelope.header_blocks
            if b.name.local == propagation.TRACE_BLOCK.local
        ]
        assert len(blocks) == 1
        assert propagation.extract_envelope(envelope) == ctx2

    def test_absent_block_extracts_none(self):
        from repro.core.envelope import SoapEnvelope
        from repro.xdm import element

        assert propagation.extract_envelope(SoapEnvelope.wrap(element("Echo"))) is None


class TestSamplerContext:
    def test_context_is_deterministic(self):
        from repro.obs.sampling import HeadSampler

        a = HeadSampler(0.5, seed=3).context_for("figure5-n100")
        b = HeadSampler(0.5, seed=3).context_for("figure5-n100")
        assert a == b
        assert a.trace_id != 0
        assert a.origin == ""

    def test_keep_drop_consistent_across_processes(self):
        """Client and server samplers agree per key: the decision rides
        the wire, so both sides keep (or drop) the same trace ids."""
        from repro.obs.sampling import HeadSampler

        client = HeadSampler(0.5, seed=3)
        server = HeadSampler(0.5, seed=3)
        for key in (f"op-{i}" for i in range(64)):
            ctx = client.context_for(key)
            wire = propagation.parse_context(propagation.format_context(ctx))
            assert wire.sampled == server.decide(key)
            assert wire.trace_id == ctx.trace_id

    def test_dropped_context_suppresses_both_sides(self):
        from repro.obs.sampling import HeadSampler

        sampler = HeadSampler(0.0, seed=3)
        ctx = sampler.context_for("anything")
        assert ctx.sampled is False
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("serve", context=ctx):
            pass
        assert rec.spans == []


class TestTraceFileSerialization:
    def test_parallel_appends_stay_line_atomic(self, tmp_path):
        """N threads appending traces concurrently must yield a parseable
        JSONL file with no interleaved lines."""
        from repro.obs import append_trace, read_trace_lines

        path = str(tmp_path / "traces.jsonl")
        workers = 8

        def write_one(i):
            rec = TraceRecorder(service=f"w{i}", origin=f"{i:08x}")
            with rec.span("exchange", worker=i):
                with rec.span("inner"):
                    pass
            append_trace(path, rec, meta={"worker": i})

        threads = [
            threading.Thread(target=write_one, args=(i,)) for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        documents = read_trace_lines(path)
        assert len(documents) == workers
        seen = set()
        for doc in documents:
            assert doc["schema"] == "repro.obs.trace/1"
            assert doc["spans"][0]["name"] == "exchange"
            seen.add(doc["meta"]["worker"])
        assert seen == set(range(workers))

    def test_trace_meta_carries_identity(self):
        rec = TraceRecorder(service="serve", origin="deadbeef")
        doc = trace_dict(rec)
        assert doc["meta"]["service"] == "serve"
        assert doc["meta"]["origin"] == "deadbeef"


class TestHistogramExemplars:
    def test_exemplar_tracks_max_observation(self):
        h = Histogram("lat", bounds=(0.1, 1.0))
        h.observe(0.2, exemplar="a" * 32)
        h.observe(0.9, exemplar="b" * 32)
        h.observe(0.3, exemplar="c" * 32)
        snap = h.snapshot()
        assert snap["exemplar"] == {"trace_id": "b" * 32, "value": 0.9}

    def test_no_exemplar_key_when_never_offered(self):
        h = Histogram("lat", bounds=(0.1, 1.0))
        h.observe(0.2)
        assert "exemplar" not in h.snapshot()

    def test_merge_keeps_worst_case_exemplar(self):
        a = Histogram("lat", bounds=(0.1, 1.0))
        b = Histogram("lat", bounds=(0.1, 1.0))
        a.observe(0.2, exemplar="small")
        b.observe(0.8, exemplar="big")
        a.merge(b)
        assert a.snapshot()["exemplar"]["trace_id"] == "big"
