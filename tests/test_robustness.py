"""Failure injection and fuzzing across the stack.

These tests assert the failure *mode*, not just the absence of success:
malformed input anywhere in the stack must surface as the documented
exception type — never a crash, never a hang, and (server-side) never a
dead service.
"""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bxsa import BXSADecodeError
from repro.core import (
    BXSAEncoding,
    SoapEnvelope,
    SoapFault,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.netcdf import NetCDFFormatError, read_dataset_bytes, write_dataset_bytes
from repro.services import echo_dispatcher
from repro.transport import (
    MemoryNetwork,
    TransportClosed,
    TransportError,
    memory_pipe,
    write_message,
)
from repro.transport.base import BufferedChannel
from repro.transport.http.messages import HttpError, read_request, read_response
from repro.workloads.lead import lead_dataset
from repro.xdm import element, leaf
from repro.xmlcodec import XMLParseError, parse_document

_fuzz = settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow], deadline=None)


class TestHttpFuzz:
    @given(st.binary(min_size=1, max_size=300))
    @_fuzz
    def test_request_parser_never_crashes(self, blob):
        a, b = memory_pipe()
        a.send_all(blob)
        a.close()
        try:
            read_request(BufferedChannel(b))
        except (HttpError, TransportError):
            pass

    @given(st.binary(min_size=1, max_size=300))
    @_fuzz
    def test_response_parser_never_crashes(self, blob):
        a, b = memory_pipe()
        a.send_all(blob)
        a.close()
        try:
            read_response(BufferedChannel(b))
        except (HttpError, TransportError):
            pass

    @given(st.text(max_size=120).filter(lambda s: "\r\n" not in s))
    @_fuzz
    def test_almost_http_headers(self, junk):
        a, b = memory_pipe()
        a.send_all(f"GET / HTTP/1.1\r\n{junk}\r\n\r\n".encode("utf-8", "replace"))
        a.close()
        try:
            read_request(BufferedChannel(b))
        except (HttpError, TransportError):
            pass


class TestNetCDFFuzz:
    @given(st.binary(max_size=400))
    @_fuzz
    def test_reader_never_crashes_on_garbage(self, blob):
        try:
            read_dataset_bytes(blob)
        except NetCDFFormatError:
            pass

    @given(st.data())
    @_fuzz
    def test_bitflipped_valid_files(self, data):
        """A valid file with one flipped header byte parses or rejects —
        no exception type other than NetCDFFormatError escapes."""
        blob = bytearray(write_dataset_bytes(lead_dataset(8).to_netcdf()))
        # flip within the header region (data-region flips just change values)
        position = data.draw(st.integers(0, min(120, len(blob) - 1)))
        bit = data.draw(st.integers(0, 7))
        blob[position] ^= 1 << bit
        try:
            read_dataset_bytes(bytes(blob))
        except NetCDFFormatError:
            pass
        except (KeyError, ValueError, OverflowError, MemoryError) as exc:
            raise AssertionError(f"leaked raw exception {type(exc).__name__}: {exc}")


class TestXMLFuzz:
    @given(st.text(max_size=200))
    @_fuzz
    def test_parser_never_crashes_on_text(self, junk):
        try:
            parse_document(junk)
        except XMLParseError:
            pass

    @given(st.data())
    @_fuzz
    def test_mutated_valid_documents(self, data):
        from repro.xmlcodec import serialize

        xml = serialize(lead_dataset(4).to_document())
        position = data.draw(st.integers(0, len(xml) - 1))
        replacement = data.draw(st.characters(blacklist_categories=("Cs",)))
        mutated = xml[:position] + replacement + xml[position + 1 :]
        try:
            parse_document(mutated)
        except XMLParseError:
            pass


class TestEngineFailureInjection:
    def setup_method(self):
        self.net = MemoryNetwork()
        self.service = SoapTcpService(self.net.listen("svc"), echo_dispatcher()).start()

    def teardown_method(self):
        self.service.stop()

    def _healthy_call(self):
        client = SoapTcpClient(lambda: self.net.connect("svc"), encoding=BXSAEncoding())
        response = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 1, "int"))))
        client.close()
        assert response.body_root.name.local == "EchoResponse"

    def test_garbage_bytes_do_not_kill_service(self):
        channel = self.net.connect("svc")
        channel.send_all(b"\x00\x01\x02 garbage that is not a framed message")
        channel.close()
        self._healthy_call()  # the service must still answer others

    def test_valid_frame_bad_payload_returns_fault(self):
        from repro.core import encoding_for_content_type
        from repro.transport import read_message

        channel = self.net.connect("svc")
        write_message(channel, b"this is not BXSA", "application/bxsa")
        payload, ctype = read_message(channel)
        # the reply must be a decodable fault (in whatever encoding the
        # server chose for the failure report)
        fault_env = SoapEnvelope.from_document(
            encoding_for_content_type(ctype).decode(payload)
        )
        fault = SoapFault.find_in(fault_env.body_children)
        assert fault is not None
        assert "decode" in SoapFault.from_element(fault).string
        channel.close()
        self._healthy_call()

    def test_unsupported_content_type_faults_not_hangs(self):
        from repro.transport import read_message

        channel = self.net.connect("svc")
        write_message(channel, b"{}", "application/json")
        payload, ctype = read_message(channel)
        # server cannot speak json; it answers with its default encoding
        fault_env = SoapEnvelope.from_document(XMLEncoding().decode(payload))
        assert SoapFault.find_in(fault_env.body_children) is not None
        channel.close()

    def test_client_disconnect_mid_request_keeps_service_alive(self):
        channel = self.net.connect("svc")
        # send half a message then vanish
        payload = BXSAEncoding().encode(
            SoapEnvelope.wrap(element("Echo")).to_document()
        )
        frame = bytearray()

        class Capture:
            def send_all(self, data):
                frame.extend(data)

        write_message(Capture(), payload, "application/bxsa")
        channel.send_all(bytes(frame[: len(frame) // 2]))
        channel.close()
        self._healthy_call()

    def test_truncated_response_raises_transport_closed(self):
        """A server that dies mid-response must surface TransportClosed."""
        net = MemoryNetwork()
        listener = net.listen("half")

        def evil_server():
            channel = listener.accept()
            from repro.transport import read_message

            read_message(channel)  # consume the request
            channel.send_all(b"\xb5\x0a")  # magic only, then die
            channel.close()

        thread = threading.Thread(target=evil_server, daemon=True)
        thread.start()
        client = SoapTcpClient(lambda: net.connect("half"), encoding=XMLEncoding())
        with pytest.raises(TransportError):
            client.call(SoapEnvelope.wrap(element("Echo")))
        client.close()
        thread.join(timeout=5)

    def test_concurrent_clients_with_one_malicious(self):
        errors = []

        def good(n):
            try:
                client = SoapTcpClient(
                    lambda: self.net.connect("svc"), encoding=BXSAEncoding()
                )
                for i in range(5):
                    client.call(SoapEnvelope.wrap(element("Echo", leaf("i", i, "int"))))
                client.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def bad():
            channel = self.net.connect("svc")
            channel.send_all(b"\xff" * 64)
            channel.close()

        threads = [threading.Thread(target=good, args=(n,)) for n in range(3)]
        threads.append(threading.Thread(target=bad))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert errors == []


class TestCrossEndian:
    def test_big_endian_client_little_endian_server(self):
        """A BE-encoding client interoperates with a host-order server —
        BXSA's per-frame byte order at work through the whole stack."""
        from repro.xbs import BIG_ENDIAN

        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), echo_dispatcher()):
            client = SoapTcpClient(
                lambda: net.connect("svc"), encoding=BXSAEncoding(BIG_ENDIAN)
            )
            from repro.xdm import array
            from repro.xdm.path import children_named

            values = np.array([1.5, -2.25, 3e300])
            response = client.call(
                SoapEnvelope.wrap(element("Echo", array("v", values)))
            )
            echoed = children_named(response.body_root, "v")[0].values
            np.testing.assert_array_equal(np.asarray(echoed, dtype="f8"), values)
            client.close()


class TestMmapDecode:
    def test_decode_from_memory_mapped_file(self, tmp_path):
        """The paper's ArrayElement memory-mapped I/O property: decode a
        BXSA document straight from an mmap with zero-copy array views."""
        import mmap

        from repro.bxsa import decode, encode
        from repro.xdm import array

        values = np.arange(100_000, dtype="f8")
        blob = encode(element("d", array("v", values)))
        path = tmp_path / "doc.bxsa"
        path.write_bytes(blob)

        import gc

        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            try:
                node = decode(memoryview(mapped))
                arr = node.children[0].values
                # the array data lives in the mapping, not in a copy
                assert arr.base is not None
                np.testing.assert_array_equal(arr[:5], values[:5])
                total = float(arr.sum())
            finally:
                # zero-copy views pin the mapping; drop them before closing
                del arr, node
                gc.collect()
                mapped.close()
        assert total == float(values.sum())
