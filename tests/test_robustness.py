"""Failure injection and fuzzing across the stack.

These tests assert the failure *mode*, not just the absence of success:
malformed input anywhere in the stack must surface as the documented
exception type — never a crash, never a hang, and (server-side) never a
dead service.
"""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BXSAEncoding,
    SoapEnvelope,
    SoapFault,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.netcdf import NetCDFFormatError, read_dataset_bytes, write_dataset_bytes
from repro.services import echo_dispatcher
from repro.transport import (
    MemoryNetwork,
    TransportClosed,
    TransportError,
    memory_pipe,
    write_message,
)
from repro.transport.base import BufferedChannel
from repro.transport.http.messages import HttpError, read_request, read_response
from repro.workloads.lead import lead_dataset
from repro.xdm import element, leaf
from repro.xmlcodec import XMLParseError, parse_document

_fuzz = settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow], deadline=None)


class TestHttpFuzz:
    @given(st.binary(min_size=1, max_size=300))
    @_fuzz
    def test_request_parser_never_crashes(self, blob):
        a, b = memory_pipe()
        a.send_all(blob)
        a.close()
        try:
            read_request(BufferedChannel(b))
        except (HttpError, TransportError):
            pass

    @given(st.binary(min_size=1, max_size=300))
    @_fuzz
    def test_response_parser_never_crashes(self, blob):
        a, b = memory_pipe()
        a.send_all(blob)
        a.close()
        try:
            read_response(BufferedChannel(b))
        except (HttpError, TransportError):
            pass

    @given(st.text(max_size=120).filter(lambda s: "\r\n" not in s))
    @_fuzz
    def test_almost_http_headers(self, junk):
        a, b = memory_pipe()
        a.send_all(f"GET / HTTP/1.1\r\n{junk}\r\n\r\n".encode("utf-8", "replace"))
        a.close()
        try:
            read_request(BufferedChannel(b))
        except (HttpError, TransportError):
            pass


class TestNetCDFFuzz:
    @given(st.binary(max_size=400))
    @_fuzz
    def test_reader_never_crashes_on_garbage(self, blob):
        try:
            read_dataset_bytes(blob)
        except NetCDFFormatError:
            pass

    @given(st.data())
    @_fuzz
    def test_bitflipped_valid_files(self, data):
        """A valid file with one flipped header byte parses or rejects —
        no exception type other than NetCDFFormatError escapes."""
        blob = bytearray(write_dataset_bytes(lead_dataset(8).to_netcdf()))
        # flip within the header region (data-region flips just change values)
        position = data.draw(st.integers(0, min(120, len(blob) - 1)))
        bit = data.draw(st.integers(0, 7))
        blob[position] ^= 1 << bit
        try:
            read_dataset_bytes(bytes(blob))
        except NetCDFFormatError:
            pass
        except (KeyError, ValueError, OverflowError, MemoryError) as exc:
            raise AssertionError(f"leaked raw exception {type(exc).__name__}: {exc}")

    def test_negative_dimension_length_is_a_format_error(self):
        blob = bytearray(write_dataset_bytes(lead_dataset(8).to_netcdf()))
        # sign-flip the MSB of the first dimension's big-endian length
        blob[28] ^= 0x80
        with pytest.raises(NetCDFFormatError):
            read_dataset_bytes(bytes(blob))


class TestXMLFuzz:
    @given(st.text(max_size=200))
    @_fuzz
    def test_parser_never_crashes_on_text(self, junk):
        try:
            parse_document(junk)
        except XMLParseError:
            pass

    @given(st.data())
    @_fuzz
    def test_mutated_valid_documents(self, data):
        from repro.xmlcodec import serialize

        xml = serialize(lead_dataset(4).to_document())
        position = data.draw(st.integers(0, len(xml) - 1))
        replacement = data.draw(st.characters(blacklist_categories=("Cs",)))
        mutated = xml[:position] + replacement + xml[position + 1 :]
        try:
            parse_document(mutated)
        except XMLParseError:
            pass


class TestEngineFailureInjection:
    def setup_method(self):
        self.net = MemoryNetwork()
        self.service = SoapTcpService(self.net.listen("svc"), echo_dispatcher()).start()

    def teardown_method(self):
        self.service.stop()

    def _healthy_call(self):
        client = SoapTcpClient(lambda: self.net.connect("svc"), encoding=BXSAEncoding())
        response = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 1, "int"))))
        client.close()
        assert response.body_root.name.local == "EchoResponse"

    def test_garbage_bytes_do_not_kill_service(self):
        channel = self.net.connect("svc")
        channel.send_all(b"\x00\x01\x02 garbage that is not a framed message")
        channel.close()
        self._healthy_call()  # the service must still answer others

    def test_valid_frame_bad_payload_returns_fault(self):
        from repro.core import encoding_for_content_type
        from repro.transport import read_message

        channel = self.net.connect("svc")
        write_message(channel, b"this is not BXSA", "application/bxsa")
        payload, ctype = read_message(channel)
        # the reply must be a decodable fault (in whatever encoding the
        # server chose for the failure report)
        fault_env = SoapEnvelope.from_document(
            encoding_for_content_type(ctype).decode(payload)
        )
        fault = SoapFault.find_in(fault_env.body_children)
        assert fault is not None
        assert "decode" in SoapFault.from_element(fault).string
        channel.close()
        self._healthy_call()

    def test_unsupported_content_type_faults_not_hangs(self):
        from repro.transport import read_message

        channel = self.net.connect("svc")
        write_message(channel, b"{}", "application/json")
        payload, ctype = read_message(channel)
        # server cannot speak json; it answers with its default encoding
        fault_env = SoapEnvelope.from_document(XMLEncoding().decode(payload))
        assert SoapFault.find_in(fault_env.body_children) is not None
        channel.close()

    def test_client_disconnect_mid_request_keeps_service_alive(self):
        channel = self.net.connect("svc")
        # send half a message then vanish
        payload = BXSAEncoding().encode(
            SoapEnvelope.wrap(element("Echo")).to_document()
        )
        frame = bytearray()

        class Capture:
            def send_all(self, data):
                frame.extend(data)

        write_message(Capture(), payload, "application/bxsa")
        channel.send_all(bytes(frame[: len(frame) // 2]))
        channel.close()
        self._healthy_call()

    def test_truncated_response_raises_transport_closed(self):
        """A server that dies mid-response must surface TransportClosed."""
        net = MemoryNetwork()
        listener = net.listen("half")

        def evil_server():
            channel = listener.accept()
            from repro.transport import read_message

            read_message(channel)  # consume the request
            channel.send_all(b"\xb5\x0a")  # magic only, then die
            channel.close()

        thread = threading.Thread(target=evil_server, daemon=True)
        thread.start()
        client = SoapTcpClient(lambda: net.connect("half"), encoding=XMLEncoding())
        with pytest.raises(TransportError):
            client.call(SoapEnvelope.wrap(element("Echo")))
        client.close()
        thread.join(timeout=5)

    def test_concurrent_clients_with_one_malicious(self):
        errors = []

        def good(n):
            try:
                client = SoapTcpClient(
                    lambda: self.net.connect("svc"), encoding=BXSAEncoding()
                )
                for i in range(5):
                    client.call(SoapEnvelope.wrap(element("Echo", leaf("i", i, "int"))))
                client.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def bad():
            channel = self.net.connect("svc")
            channel.send_all(b"\xff" * 64)
            channel.close()

        threads = [threading.Thread(target=good, args=(n,)) for n in range(3)]
        threads.append(threading.Thread(target=bad))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert errors == []


class TestCrossEndian:
    def test_big_endian_client_little_endian_server(self):
        """A BE-encoding client interoperates with a host-order server —
        BXSA's per-frame byte order at work through the whole stack."""
        from repro.xbs import BIG_ENDIAN

        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), echo_dispatcher()):
            client = SoapTcpClient(
                lambda: net.connect("svc"), encoding=BXSAEncoding(BIG_ENDIAN)
            )
            from repro.xdm import array
            from repro.xdm.path import children_named

            values = np.array([1.5, -2.25, 3e300])
            response = client.call(
                SoapEnvelope.wrap(element("Echo", array("v", values)))
            )
            echoed = children_named(response.body_root, "v")[0].values
            np.testing.assert_array_equal(np.asarray(echoed, dtype="f8"), values)
            client.close()


class TestMmapDecode:
    def test_decode_from_memory_mapped_file(self, tmp_path):
        """The paper's ArrayElement memory-mapped I/O property: decode a
        BXSA document straight from an mmap with zero-copy array views."""
        import mmap

        from repro.bxsa import decode, encode
        from repro.xdm import array

        values = np.arange(100_000, dtype="f8")
        blob = encode(element("d", array("v", values)))
        path = tmp_path / "doc.bxsa"
        path.write_bytes(blob)

        import gc

        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            try:
                node = decode(memoryview(mapped))
                arr = node.children[0].values
                # the array data lives in the mapping, not in a copy
                assert arr.base is not None
                np.testing.assert_array_equal(arr[:5], values[:5])
                total = float(arr.sum())
            finally:
                # zero-copy views pin the mapping; drop them before closing
                del arr, node
                gc.collect()
                mapped.close()
        assert total == float(values.sum())


# ---------------------------------------------------------------------------
# fault injection & resilience (PR 1)


class TestFaultScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        from repro.netsim.faults import FaultProfile, FaultSchedule

        profile = FaultProfile(
            name="mix", reset_rate=0.2, truncate_rate=0.1, stall_rate=0.1, slow_read_rate=0.2
        )
        a, b = FaultSchedule(profile, seed=42), FaultSchedule(profile, seed=42)
        for schedule in (a, b):
            for _ in range(200):
                schedule.next_send_fault()
                schedule.next_recv_fault()
        assert a.injected == b.injected
        assert a.faults_injected == b.faults_injected

    def test_different_seed_different_schedule(self):
        from repro.netsim.faults import FaultProfile, FaultSchedule

        profile = FaultProfile(name="r", reset_rate=0.3)
        draws = []
        for seed in (1, 2):
            schedule = FaultSchedule(profile, seed=seed)
            draws.append([schedule.next_recv_fault() for _ in range(100)])
        assert draws[0] != draws[1]

    def test_max_faults_budget_guarantees_clean_tail(self):
        from repro.netsim.faults import FaultProfile, FaultSchedule

        schedule = FaultSchedule(FaultProfile(name="always", reset_rate=1.0, max_faults=3))
        faults = [schedule.next_recv_fault() for _ in range(10)]
        assert faults[:3] == ["reset"] * 3 and faults[3:] == [None] * 7

    def test_lossless_profile_never_faults(self):
        from repro.netsim.faults import LOSSLESS, FaultSchedule

        schedule = FaultSchedule(LOSSLESS, seed=0)
        assert all(
            schedule.next_send_fault() is None and schedule.next_recv_fault() is None
            for _ in range(100)
        )


class TestFaultingChannel:
    def test_reset_on_send_closes_and_raises(self):
        from repro.netsim.faults import FaultProfile, FaultSchedule, FaultingChannel, InjectedReset

        a, b = memory_pipe()
        schedule = FaultSchedule(FaultProfile(name="r", reset_rate=1.0, max_faults=1))
        faulty = FaultingChannel(a, schedule)
        with pytest.raises(InjectedReset):
            faulty.send_all(b"hello")
        # the peer observes a close, exactly like a real RST-then-EOF
        assert b.recv() == b""

    def test_truncate_delivers_prefix_then_closes(self):
        from repro.netsim.faults import FaultProfile, FaultSchedule, FaultingChannel, InjectedFault

        a, b = memory_pipe()
        schedule = FaultSchedule(FaultProfile(name="t", truncate_rate=1.0, max_faults=1))
        faulty = FaultingChannel(a, schedule)
        with pytest.raises(InjectedFault):
            faulty.send_all(b"0123456789")
        delivered = b.recv()
        assert 0 < len(delivered) < 10 and b"0123456789".startswith(delivered)

    def test_injected_faults_are_transport_errors(self):
        from repro.netsim.faults import InjectedFault, InjectedReset

        assert issubclass(InjectedFault, TransportError)
        assert issubclass(InjectedReset, TransportClosed)


class TestResilientSoapInvoke:
    """The ISSUE's acceptance gate: a BXSA/TCP and an HTTP-binding SOAP
    invoke each complete under an injected connection-reset schedule,
    within a bounded retry budget."""

    RESETS = 2

    def _profile(self):
        from repro.netsim.faults import FaultProfile

        return FaultProfile(name="resets", reset_rate=1.0, max_faults=self.RESETS)

    def _retry(self):
        from repro.transport import RetryPolicy

        return RetryPolicy(max_attempts=self.RESETS + 2, base_backoff=0.0, jitter=0.0)

    def test_bxsa_tcp_invoke_survives_resets(self):
        from repro.netsim.faults import FaultSchedule, faulty_connect

        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), echo_dispatcher(), encoding=BXSAEncoding()):
            schedule = FaultSchedule(self._profile(), seed=3)
            connects = []
            def connect():
                connects.append(1)
                return net.connect("svc")
            client = SoapTcpClient(
                faulty_connect(connect, schedule),
                encoding=BXSAEncoding(),
                retry=self._retry(),
                idempotent=True,
            )
            response = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 7, "int"))))
            client.close()
        assert response.body_root.name.local == "EchoResponse"
        assert schedule.faults_injected == self.RESETS
        assert len(connects) <= self.RESETS + 2  # bounded, not unbounded reconnects

    def test_http_binding_invoke_survives_resets(self):
        from repro.core.service import SoapHttpService
        from repro.core.client import SoapHttpClient
        from repro.netsim.faults import FaultSchedule, faulty_connect

        net = MemoryNetwork()
        with SoapHttpService(net.listen("svc"), echo_dispatcher(), encoding=XMLEncoding()):
            schedule = FaultSchedule(self._profile(), seed=3)
            connects = []
            def connect():
                connects.append(1)
                return net.connect("svc")
            client = SoapHttpClient(
                faulty_connect(connect, schedule),
                encoding=XMLEncoding(),
                retry=self._retry(),
                idempotent=True,
            )
            response = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 7, "int"))))
            client.close()
        assert response.body_root.name.local == "EchoResponse"
        assert schedule.faults_injected == self.RESETS
        assert len(connects) <= self.RESETS + 2

    def test_exhausted_budget_surfaces_typed_error(self):
        from repro.netsim.faults import FaultProfile, FaultSchedule, faulty_connect
        from repro.transport import RetryBudgetExhausted, RetryPolicy

        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), echo_dispatcher(), encoding=BXSAEncoding()):
            schedule = FaultSchedule(FaultProfile(name="dead", reset_rate=1.0), seed=0)
            client = SoapTcpClient(
                faulty_connect(lambda: net.connect("svc"), schedule),
                encoding=BXSAEncoding(),
                retry=RetryPolicy(max_attempts=3, base_backoff=0.0, jitter=0.0),
                idempotent=True,
            )
            with pytest.raises(RetryBudgetExhausted) as info:
                client.call(SoapEnvelope.wrap(element("Echo")))
            client.close()
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, TransportError)

    def test_engine_resilience_degrades_to_soap_fault(self):
        """With a ResiliencePolicy installed, exhausted transport retries
        surface as a SOAP fault — graceful degradation, not a raw error."""
        from repro.core.engine import SoapEngine
        from repro.netsim.faults import FaultProfile, FaultSchedule, faulty_connect
        from repro.transport import ResiliencePolicy, RetryPolicy
        from repro.transport.tcp_binding import TcpClientBinding

        net = MemoryNetwork()
        net.listen("void")  # accepts, but resets happen before any byte
        schedule = FaultSchedule(FaultProfile(name="dead", reset_rate=1.0), seed=0)
        connect = faulty_connect(lambda: net.connect("void"), schedule)
        engine = SoapEngine(
            BXSAEncoding(),
            TcpClientBinding(connect()),
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=2, base_backoff=0.0), idempotent=True
            ),
        )
        with pytest.raises(SoapFault) as info:
            engine.call(SoapEnvelope.wrap(element("Echo")))
        assert "degraded gracefully" in str(info.value)


class TestDuplicatePostRegression:
    """The PR's headline bugfix: a non-idempotent POST must never be
    applied twice, even when the server resets after applying it."""

    def _first_post_then_reset_server(self, net, applied, answer_second=True):
        """Applies the first POST, then resets with zero response bytes.
        If ``answer_second``, a second connection gets a 200."""
        listener = net.listen("web")

        def serve():
            channel = listener.accept()
            request = read_request(BufferedChannel(channel))
            applied.append(request.body)  # state change happens HERE
            channel.close()  # reset before any response byte
            if not answer_second:
                return
            try:
                channel = listener.accept()
            except TransportError:
                return
            request = read_request(BufferedChannel(channel))
            applied.append(request.body)
            from repro.transport.http.messages import HttpResponse

            channel.send_all(HttpResponse(200, body=b"ok").to_bytes())
            channel.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return thread

    def test_non_idempotent_post_never_replayed(self):
        from repro.transport.http.client import HttpClient

        net = MemoryNetwork()
        applied = []
        self._first_post_then_reset_server(net, applied)
        connects = []

        def connect():
            connects.append(1)
            return net.connect("web")

        client = HttpClient(connect)
        with pytest.raises(TransportError):
            client.request("POST", "/apply", body=b"debit $100")
        client.close()
        assert applied == [b"debit $100"]  # applied exactly once
        assert len(connects) == 1  # and never even re-sent

    def test_idempotent_marked_post_retries_and_succeeds(self):
        from repro.transport.http.client import HttpClient

        net = MemoryNetwork()
        applied = []
        self._first_post_then_reset_server(net, applied)
        client = HttpClient(lambda: net.connect("web"))
        response = client.request("POST", "/apply", body=b"put k=v", idempotent=True)
        client.close()
        assert response.ok and response.body == b"ok"
        assert applied == [b"put k=v", b"put k=v"]  # replay was declared safe

    def test_post_with_response_bytes_consumed_never_retried(self):
        """Even an idempotent-marked POST must not be replayed once any
        response byte has been read (the reply may have committed)."""
        from repro.transport.http.client import HttpClient

        net = MemoryNetwork()
        applied = []
        listener = net.listen("web")

        def serve():
            channel = listener.accept()
            request = read_request(BufferedChannel(channel))
            applied.append(request.body)
            channel.send_all(b"HTTP/1.1 2")  # partial status line, then die
            channel.close()

        threading.Thread(target=serve, daemon=True).start()
        client = HttpClient(lambda: net.connect("web"))
        with pytest.raises(TransportError):
            client.request("POST", "/apply", body=b"x", idempotent=True)
        client.close()
        assert applied == [b"x"]


class TestStripeTimeout:
    def test_stalled_stripe_worker_raises_not_hangs(self):
        """A data channel that never delivers EOF must surface
        StripeTimeout with partial-transfer state — not silently return a
        buffer with holes (the old behaviour)."""
        import itertools

        from repro.gridftp import GridFTPClient, GridFTPServer, HostCredential, StripeTimeout

        net = MemoryNetwork()
        counter = itertools.count()

        def data_listener_factory():
            name = f"d{next(counter)}"
            return name, net.listen(name)

        credential = HostCredential.generate()
        server = GridFTPServer(net.listen("g"), data_listener_factory, credential)
        server.publish("/f.bin", b"\xab" * 4096)
        server.start()
        try:
            # connect the data channel somewhere nobody ever writes: the
            # worker blocks forever waiting for its first block header
            def blackhole_connect(_address):
                a, _b = memory_pipe()
                return a

            client = GridFTPClient(
                lambda: net.connect("g"),
                blackhole_connect,
                credential,
                stripe_timeout=0.2,
            )
            with pytest.raises(StripeTimeout) as info:
                client.retrieve("/f.bin", 1)
            assert info.value.stats is not None
            assert info.value.stats.blocks_received == 0
            assert "1/1 stripe workers" in str(info.value)
        finally:
            server.stop()


class TestFaultRecoveryProperties:
    """Property: under ANY seeded fault schedule, an invoke either
    completes (faults absorbed within the retry budget) or raises a typed
    error — never a hang, never an unknown exception type."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_tcp_invoke_recovers_or_raises_typed(self, seed):
        from repro.netsim.faults import FaultProfile, FaultSchedule, faulty_connect
        from repro.transport import RetryBudgetExhausted, RetryPolicy

        profile = FaultProfile(
            name="mix",
            reset_rate=0.25,
            truncate_rate=0.15,
            slow_read_rate=0.2,
            stall_rate=0.1,
            stall_seconds=0.001,
        )
        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), echo_dispatcher(), encoding=BXSAEncoding()):
            schedule = FaultSchedule(profile, seed=seed)
            client = SoapTcpClient(
                faulty_connect(lambda: net.connect("svc"), schedule),
                encoding=BXSAEncoding(),
                retry=RetryPolicy(max_attempts=4, base_backoff=0.0, jitter=0.0),
                idempotent=True,
            )
            try:
                response = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 1, "int"))))
                assert response.body_root.name.local == "EchoResponse"
            except (RetryBudgetExhausted, TransportError):
                pass  # typed surrender is acceptable; anything else fails
            finally:
                client.close()

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_bounded_fault_count_always_recovers(self, seed):
        """With the fault budget strictly below the retry budget, the
        invoke MUST succeed — recovery is guaranteed, not probabilistic."""
        from repro.netsim.faults import FaultProfile, FaultSchedule, faulty_connect
        from repro.transport import RetryPolicy

        profile = FaultProfile(name="bounded", reset_rate=1.0, max_faults=2)
        net = MemoryNetwork()
        with SoapTcpService(net.listen("svc"), echo_dispatcher(), encoding=BXSAEncoding()):
            schedule = FaultSchedule(profile, seed=seed)
            client = SoapTcpClient(
                faulty_connect(lambda: net.connect("svc"), schedule),
                encoding=BXSAEncoding(),
                retry=RetryPolicy(max_attempts=4, base_backoff=0.0, jitter=0.0),
                idempotent=True,
            )
            response = client.call(SoapEnvelope.wrap(element("Echo", leaf("x", 1, "int"))))
            client.close()
        assert response.body_root.name.local == "EchoResponse"


class TestDeadlines:
    def test_deadline_channel_raises_on_expired_budget(self):
        from repro.transport import Deadline, DeadlineChannel, DeadlineExceeded

        a, b = memory_pipe()
        shim = DeadlineChannel(a, Deadline.after(0.0))
        with pytest.raises(DeadlineExceeded):
            shim.recv()
        b.close()

    def test_call_deadline_beats_dribbling_server(self):
        """A server that dribbles a byte at a time and never finishes: the
        per-call deadline turns an unbounded wait into DeadlineExceeded.
        (Deadlines are enforced at operation boundaries, so progress —
        however slow — is what gives the check its opportunities.)"""
        import time as _time

        from repro.transport import DeadlineExceeded

        net = MemoryNetwork()
        listener = net.listen("tarpit")

        def tarpit():
            import struct

            channel = listener.accept()
            from repro.transport import read_message

            read_message(channel)  # consume the request, then stall
            # a valid frame header promising a megabyte...
            ctag = b"text/xml"
            channel.send_all(b"\xb5\x0a" + bytes((len(ctag),)) + ctag + struct.pack(">I", 1 << 20))
            for _ in range(1000):  # ...delivered one byte at a time (~10s, far past the deadline)
                try:
                    channel.send_all(b"x")
                except TransportError:
                    return
                _time.sleep(0.01)

        threading.Thread(target=tarpit, daemon=True).start()
        client = SoapTcpClient(lambda: net.connect("tarpit"), encoding=XMLEncoding())
        start = _time.monotonic()
        with pytest.raises(DeadlineExceeded):
            client.call(SoapEnvelope.wrap(element("Echo")), deadline=0.15)
        assert _time.monotonic() - start < 5.0  # bounded, nowhere near a hang
        client.close()

    def test_deadline_never_retried(self):
        """DeadlineExceeded is terminal: retrying past a blown budget
        would only blow it further."""
        from repro.transport import Deadline, DeadlineExceeded, RetryPolicy, retry_call

        attempts = []

        def op(n):
            attempts.append(n)
            raise DeadlineExceeded("budget gone")

        with pytest.raises(DeadlineExceeded):
            retry_call(
                op,
                RetryPolicy(max_attempts=5, base_backoff=0.0),
                deadline=Deadline.after(10.0),
                retryable=lambda exc: True,
            )
        assert attempts == [1]
