"""Integration tests: the full separated scheme and unified scheme
end-to-end — the four configurations of the paper's §6 experiments."""

import itertools

import numpy as np
import pytest

from repro.core import BXSAEncoding, SoapTcpClient, SoapTcpService, XMLEncoding, SoapHttpClient, SoapHttpService
from repro.datachannel import GridFTPDataChannel, HttpDataChannel, UrlResolver
from repro.datachannel.base import DataChannelError
from repro.netcdf import write_dataset_bytes
from repro.services import (
    build_verification_dispatcher,
    make_reference_request,
    make_unified_request,
    parse_verification_response,
)
from repro.transport import MemoryNetwork
from repro.workloads import lead_dataset


@pytest.fixture()
def world():
    """One memory network hosting both data channels and the SOAP service."""
    net = MemoryNetwork()
    counter = itertools.count()

    http_channel = HttpDataChannel(net.listen("web"), lambda: net.connect("web")).start()

    def data_listener_factory():
        name = f"gd{next(counter)}"
        return name, net.listen(name)

    gftp_channel = GridFTPDataChannel(
        net.listen("gftp"),
        data_listener_factory,
        lambda: net.connect("gftp"),
        net.connect,
        n_streams=4,
    ).start()

    resolver = UrlResolver().register(http_channel).register(gftp_channel)
    dispatcher = build_verification_dispatcher(fetch_url=resolver.fetch)
    service = SoapTcpService(net.listen("soap"), dispatcher).start()

    yield {
        "net": net,
        "http": http_channel,
        "gftp": gftp_channel,
        "service": service,
    }
    service.stop()
    gftp_channel.stop()
    http_channel.stop()


def soap_client(net, encoding_cls):
    return SoapTcpClient(lambda: net.connect("soap"), encoding=encoding_cls())


class TestUnifiedScheme:
    @pytest.mark.parametrize("encoding_cls", [XMLEncoding, BXSAEncoding])
    def test_verify_in_message(self, world, encoding_cls):
        dataset = lead_dataset(500)
        client = soap_client(world["net"], encoding_cls)
        response = client.call(make_unified_request(dataset))
        result = parse_verification_response(response.body_root)
        assert result.ok is True
        assert result.count == 500
        assert result.checksum == pytest.approx(float(dataset.values.sum()))
        client.close()

    def test_corrupted_data_detected_by_server(self, world):
        dataset = lead_dataset(100)
        dataset.values.setflags(write=True)
        dataset.values[5] = np.inf
        client = soap_client(world["net"], BXSAEncoding)
        result = parse_verification_response(
            client.call(make_unified_request(dataset)).body_root
        )
        assert result.ok is False
        assert result.valid == 99
        client.close()


class TestSeparatedScheme:
    def test_http_data_channel(self, world):
        dataset = lead_dataset(1000)
        blob = write_dataset_bytes(dataset.to_netcdf())
        url = world["http"].publish("run/sample.nc", blob)
        assert url.startswith("http://")

        client = soap_client(world["net"], XMLEncoding)
        response = client.call(make_reference_request(url))
        result = parse_verification_response(response.body_root)
        assert result.ok is True
        assert result.count == 1000
        client.close()

    @pytest.mark.parametrize("n_streams", [1, 4])
    def test_gridftp_data_channel(self, world, n_streams):
        world["gftp"].n_streams = n_streams
        dataset = lead_dataset(2000)
        url = world["gftp"].publish("run2.nc", write_dataset_bytes(dataset.to_netcdf()))
        assert url.startswith("gftp://")

        client = soap_client(world["net"], XMLEncoding)
        result = parse_verification_response(
            client.call(make_reference_request(url, n_streams)).body_root
        )
        assert result.ok is True
        assert result.count == 2000
        assert world["gftp"].last_stats is not None
        assert world["gftp"].last_stats.n_streams == n_streams
        client.close()

    def test_missing_file_becomes_fault(self, world):
        from repro.core import SoapFault

        client = soap_client(world["net"], XMLEncoding)
        with pytest.raises(SoapFault):
            client.call(make_reference_request("http://datahost/absent.nc"))
        client.close()

    def test_unknown_scheme_becomes_fault(self, world):
        from repro.core import SoapFault

        client = soap_client(world["net"], XMLEncoding)
        with pytest.raises(SoapFault, match="scheme"):
            client.call(make_reference_request("ftp://old/file.nc"))
        client.close()

    def test_control_message_is_small(self, world):
        """The whole point of the separated scheme: the SOAP message stays
        tiny regardless of data volume."""
        url = world["http"].publish(
            "big.nc", write_dataset_bytes(lead_dataset(100_000).to_netcdf())
        )
        envelope = make_reference_request(url)
        payload = XMLEncoding().encode(envelope.to_document())
        assert len(payload) < 1024


class TestResolver:
    def test_malformed_url(self):
        with pytest.raises(DataChannelError):
            UrlResolver().fetch("not-a-url")

    def test_scheme_dispatch(self, world):
        blob = write_dataset_bytes(lead_dataset(10).to_netcdf())
        resolver = UrlResolver().register(world["http"])
        url = world["http"].publish("x.nc", blob)
        assert resolver.fetch(url) == blob
        with pytest.raises(DataChannelError, match="scheme"):
            resolver.fetch("gftp://gridhost/x.nc")


class TestOverHttpBinding:
    def test_unified_over_http(self, world):
        """The paper's XML/HTTP configuration, full stack."""
        net = world["net"]
        dispatcher = build_verification_dispatcher()
        with SoapHttpService(net.listen("soap-http"), dispatcher):
            client = SoapHttpClient(lambda: net.connect("soap-http"), encoding=XMLEncoding())
            result = parse_verification_response(
                client.call(make_unified_request(lead_dataset(300))).body_root
            )
            assert result.ok is True
            client.close()
