"""Tests for the serving runtime: worker pool, admission control, load
shedding with ``Retry-After`` cooperation, graceful drain, the load
generators, and the figure_load harness experiment.

The overload acceptance scenario lives in
:class:`TestServeServiceOverload`: a service with queue depth K offered
more than it can admit answers the excess with ``503`` + ``Retry-After``
(visible both as the raw header and as the parsed
:class:`~repro.transport.resilience.ServerBusy` hint), exports
``serve_queue_depth`` / ``serve_shed_total`` on ``GET /metrics``, and
never deadlocks.
"""

import threading
import time

import pytest

from repro.core import Dispatcher, SoapEnvelope, SoapHttpClient
from repro.core.policies import BXSAEncoding, XMLEncoding
from repro.loadgen import LoadResult, arrival_schedule, closed_loop, open_loop
from repro.loadgen.generator import LATENCY_BOUNDS
from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.metrics import Histogram
from repro.serve import (
    AdmissionQueueFull,
    PoolStopped,
    ServeConfig,
    SoapServeService,
    WorkerPool,
)
from repro.transport import MemoryNetwork
from repro.transport.http import HttpClient
from repro.transport.resilience import (
    RetryBudgetExhausted,
    RetryPolicy,
    ServerBusy,
    parse_retry_after,
    retry_call,
)
from repro.xdm import element, leaf


def parse_prometheus(text: str) -> dict:
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


def series_sum(samples: dict, name: str) -> float:
    return sum(v for k, v in samples.items() if k.split("{")[0] == name)


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


# ----------------------------------------------------------------------
# WorkerPool


class TestWorkerPool:
    def test_submit_runs_task_with_worker_state(self):
        with WorkerPool(workers=2, queue_depth=4, worker_state_factory=dict) as pool:
            completion = pool.submit(lambda state: (type(state), 41 + 1))
            kind, value = completion.result(5)
        assert kind is dict
        assert value == 42

    def test_worker_state_is_reused_across_tasks(self):
        def factory():
            return {"count": 0}

        def bump(state):
            state["count"] += 1
            return state["count"]

        with WorkerPool(workers=1, queue_depth=8, worker_state_factory=factory) as pool:
            counts = [pool.submit(bump).result(5) for _ in range(5)]
        assert counts == [1, 2, 3, 4, 5]

    def test_task_error_propagates_to_the_waiter(self):
        with WorkerPool(workers=1, queue_depth=2) as pool:
            completion = pool.submit(lambda _s: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                completion.result(5)
            # and the worker survived to run the next task
            assert pool.submit(lambda _s: "alive").result(5) == "alive"

    def test_full_queue_sheds_with_retry_after_hint(self):
        release = threading.Event()
        started = threading.Event()
        metrics = MetricsRegistry()
        pool = WorkerPool(
            workers=1, queue_depth=2, metrics=metrics, retry_after=0.25
        ).start()
        try:
            def block(_state):
                started.set()
                release.wait(10)
                return "done"

            first = pool.submit(block)
            assert started.wait(5)
            queued = [pool.submit(lambda _s: "queued") for _ in range(2)]
            with pytest.raises(AdmissionQueueFull) as excinfo:
                pool.submit(lambda _s: "overflow")
            assert excinfo.value.retry_after == 0.25
            assert metrics.counter("serve_shed_total").snapshot() == 1
            assert metrics.gauge("serve_queue_depth").snapshot() == 2
            release.set()
            assert first.result(5) == "done"
            assert [c.result(5) for c in queued] == ["queued", "queued"]
        finally:
            release.set()
            pool.stop(1)
        # the shed task never reached the completed counters
        assert metrics.counter("serve_shed_total").snapshot() == 1

    def test_submit_after_stop_raises_pool_stopped(self):
        pool = WorkerPool(workers=1, queue_depth=1).start()
        pool.stop(1)
        with pytest.raises(PoolStopped):
            pool.submit(lambda _s: None)

    def test_stop_drains_admitted_work(self):
        metrics = MetricsRegistry()
        pool = WorkerPool(workers=2, queue_depth=16, metrics=metrics).start()
        completions = [
            pool.submit(lambda _s, i=i: (time.sleep(0.01), i)[1]) for i in range(10)
        ]
        pool.stop(drain_timeout=10)
        assert [c.result(0.1) for c in completions] == list(range(10))
        samples = parse_prometheus(render_prometheus(metrics))
        assert samples['serve_completed_total{status="ok"}'] == 10

    def test_stop_abandons_past_the_drain_budget(self):
        release = threading.Event()
        started = threading.Event()
        pool = WorkerPool(workers=1, queue_depth=2).start()
        try:
            def block(_state):
                started.set()
                release.wait(30)
                return "eventually"

            running = pool.submit(block)
            assert started.wait(5)
            queued = pool.submit(lambda _s: "never runs")
            began = time.monotonic()
            pool.stop(drain_timeout=0.2)
            assert time.monotonic() - began < 5  # bounded, not a hang
            with pytest.raises(PoolStopped):
                queued.result(0.1)
            assert not running.done()
        finally:
            release.set()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(queue_depth=0)


# ----------------------------------------------------------------------
# Retry-After cooperation (server hint -> client pacing)


class TestRetryAfterCooperation:
    def test_parse_retry_after_seconds_form(self):
        assert parse_retry_after("3") == 3.0
        assert parse_retry_after(" 0.5 ") == 0.5
        assert parse_retry_after("0") == 0.0
        assert parse_retry_after(None) is None
        assert parse_retry_after("-2") is None
        assert parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT") is None

    def test_hinted_delay_wins_over_exponential_backoff(self):
        """A 503's Retry-After replaces the policy's computed backoff."""
        sleeps: list[float] = []
        attempts = {"n": 0}

        def flaky(_attempt):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise ServerBusy("overloaded", retry_after=0.7)
            return "ok"

        # base backoff far from the hint in both directions: tiny base
        # would sleep ~1ms, the hint forces exactly 0.7s
        policy = RetryPolicy(max_attempts=3, base_backoff=0.001, jitter=0.0)
        result = retry_call(flaky, policy, sleep=sleeps.append)
        assert result == "ok"
        assert sleeps == [0.7, 0.7]

        # and without a hint the exponential schedule is untouched
        sleeps.clear()
        attempts["n"] = 0

        def flaky_no_hint(_attempt):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise ServerBusy("overloaded")
            return "ok"

        retry_call(flaky_no_hint, policy, sleep=sleeps.append)
        assert sleeps == [0.001, 0.002]

    def test_hint_still_respects_the_retry_budget(self):
        def always_busy(_attempt):
            raise ServerBusy("overloaded", retry_after=0.0)

        policy = RetryPolicy(max_attempts=2, base_backoff=0.0, jitter=0.0)
        with pytest.raises(RetryBudgetExhausted):
            retry_call(always_busy, policy, sleep=lambda _s: None)


# ----------------------------------------------------------------------
# SoapServeService end to end


def make_dispatcher(started: threading.Event, release: threading.Event) -> Dispatcher:
    d = Dispatcher()

    @d.operation("Echo")
    def echo(request: SoapEnvelope):
        return element("EchoResponse", *request.body_root.children)

    @d.operation("Block")
    def block(request: SoapEnvelope):
        started.set()
        release.wait(30)
        return element("BlockResponse")

    return d


def echo_envelope(n: int = 7) -> SoapEnvelope:
    return SoapEnvelope.wrap(element("Echo", leaf("n", n, "int")))


class TestServeServiceOverload:
    def setup_method(self):
        self.net = MemoryNetwork()
        self.started = threading.Event()
        self.release = threading.Event()
        self.service = SoapServeService(
            self.net.listen("serve"),
            make_dispatcher(self.started, self.release),
            config=ServeConfig(
                workers=1, queue_depth=1, retry_after=0.35, drain_timeout=5.0
            ),
        ).start()

    def teardown_method(self):
        self.release.set()
        self.service.stop()

    def call_in_background(self, envelope: SoapEnvelope, encoding=None):
        client = SoapHttpClient(
            lambda: self.net.connect("serve"),
            encoding=encoding if encoding is not None else XMLEncoding(),
        )
        box = {}

        def runner():
            try:
                box["result"] = client.call(envelope)
            except Exception as exc:  # noqa: BLE001 - surfaced via box
                box["error"] = exc
            finally:
                client.close()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        return thread, box

    def test_echo_in_both_encodings(self):
        for encoding in (XMLEncoding(), BXSAEncoding()):
            client = SoapHttpClient(
                lambda: self.net.connect("serve"), encoding=encoding
            )
            try:
                response = client.call(echo_envelope(11))
            finally:
                client.close()
            assert response.body_root.name.local == "EchoResponse"

    def test_offered_past_queue_depth_sheds_503_with_retry_after(self):
        # occupy the single worker, then fill the depth-1 queue
        blocker_thread, blocker_box = self.call_in_background(
            SoapEnvelope.wrap(element("Block"))
        )
        assert self.started.wait(5)
        queued_thread, queued_box = self.call_in_background(echo_envelope(1))
        wait_until(lambda: self.service.pool.metrics.gauge("serve_queue_depth").snapshot() == 1)

        # raw HTTP view: the overflow POST answers 503 + Retry-After
        raw = HttpClient(lambda: self.net.connect("serve"))
        try:
            body = XMLEncoding().encode(echo_envelope(2).to_document())
            response = raw.post(
                "/soap", body, headers={"Content-Type": XMLEncoding().content_type}
            )
            assert response.status == 503
            assert response.headers.get("Retry-After") == "0.35"

            # engine view: the same condition surfaces as ServerBusy
            # carrying the parsed hint
            client = SoapHttpClient(
                lambda: self.net.connect("serve"), encoding=XMLEncoding()
            )
            try:
                with pytest.raises(ServerBusy) as excinfo:
                    client.call(echo_envelope(3))
            finally:
                client.close()
            assert excinfo.value.retry_after == 0.35

            # saturation telemetry on the same port
            samples = parse_prometheus(raw.get("/metrics").body.decode())
            assert samples["serve_queue_depth"] == 1
            assert samples["serve_shed_total"] == 2
            assert samples["serve_workers_busy"] == 1
            assert samples["serve_saturation"] == 1
            assert samples["serve_queue_capacity"] == 1
        finally:
            raw.close()

        # release: both admitted requests complete, nothing deadlocks
        self.release.set()
        blocker_thread.join(5)
        queued_thread.join(5)
        assert "error" not in blocker_box and "error" not in queued_box
        assert blocker_box["result"].body_root.name.local == "BlockResponse"
        assert queued_box["result"].body_root.name.local == "EchoResponse"

    def test_shed_requests_are_red_counted(self):
        blocker_thread, _ = self.call_in_background(SoapEnvelope.wrap(element("Block")))
        assert self.started.wait(5)
        _, queued_box = self.call_in_background(echo_envelope(1))
        wait_until(
            lambda: self.service.pool.metrics.gauge("serve_queue_depth").snapshot() == 1
        )
        client = SoapHttpClient(lambda: self.net.connect("serve"), encoding=XMLEncoding())
        try:
            with pytest.raises(ServerBusy):
                client.call(echo_envelope(2))
        finally:
            client.close()
        self.release.set()
        blocker_thread.join(5)
        samples = parse_prometheus(render_prometheus(self.service.metrics))
        shed_series = {
            k: v
            for k, v in samples.items()
            if k.startswith("soap_requests_total") and 'status="shed"' in k
        }
        assert sum(shed_series.values()) == 1

    def test_resilient_client_retries_a_shed_exchange(self):
        """503 -> ServerBusy -> engine retry paced by the server's hint."""
        from repro.transport.resilience import ResiliencePolicy

        blocker_thread, _ = self.call_in_background(SoapEnvelope.wrap(element("Block")))
        assert self.started.wait(5)
        _, queued_box = self.call_in_background(echo_envelope(1))
        wait_until(
            lambda: self.service.pool.metrics.gauge("serve_queue_depth").snapshot() == 1
        )

        unblock = threading.Timer(0.15, self.release.set)
        unblock.start()
        client = SoapHttpClient(
            lambda: self.net.connect("serve"),
            encoding=XMLEncoding(),
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=8, base_backoff=0.05, jitter=0.0)
            ),
        )
        try:
            response = client.call(echo_envelope(4))
        finally:
            client.close()
            unblock.cancel()
        assert response.body_root.name.local == "EchoResponse"
        blocker_thread.join(5)

    def test_stop_under_load_is_bounded(self):
        threads = [self.call_in_background(echo_envelope(i))[0] for i in range(8)]
        began = time.monotonic()
        self.service.stop()
        assert time.monotonic() - began < self.service.config.drain_timeout + 3
        for thread in threads:
            thread.join(5)
            assert not thread.is_alive()


# ----------------------------------------------------------------------
# Load generators


class TestLoadgen:
    @staticmethod
    def classified_factory():
        """index % 5 == 4 -> shed; % 7 == 6 -> failed; else completed."""

        def factory():
            def call(index):
                if index % 5 == 4:
                    raise ServerBusy("busy", retry_after=0.01)
                if index % 7 == 6:
                    raise RuntimeError("boom")

            return call

        return factory

    def expected_counts(self, total):
        shed = sum(1 for i in range(total) if i % 5 == 4)
        failed = sum(1 for i in range(total) if i % 7 == 6 and i % 5 != 4)
        return total - shed - failed, shed, failed

    def test_open_loop_accounting_and_classification(self):
        total = 70
        result = open_loop(
            self.classified_factory(), rate=10_000, total=total, seed=1, senders=8
        )
        completed, shed, failed = self.expected_counts(total)
        assert (result.offered, result.completed, result.shed, result.failed) == (
            total,
            completed,
            shed,
            failed,
        )
        assert result.latency.count == completed
        assert result.goodput > 0
        assert 0 < result.shed_rate < 1

    def test_closed_loop_accounting(self):
        result = closed_loop(
            self.classified_factory(), clients=5, requests_per_client=14, seed=2
        )
        completed, shed, failed = self.expected_counts(70)
        assert (result.offered, result.completed, result.shed, result.failed) == (
            70,
            completed,
            shed,
            failed,
        )

    def test_arrival_schedule_is_deterministic_and_paced(self):
        a = arrival_schedule(200.0, 50, seed=9, jitter=0.3)
        b = arrival_schedule(200.0, 50, seed=9, jitter=0.3)
        assert a == b
        assert a != arrival_schedule(200.0, 50, seed=10, jitter=0.3)
        plain = arrival_schedule(200.0, 50)
        assert plain == [pytest.approx(i / 200.0) for i in range(50)]
        assert all(offset >= 0 for offset in a)

    def test_loadgen_metrics_registry_records_outcomes(self):
        metrics = MetricsRegistry()
        open_loop(
            self.classified_factory(),
            rate=10_000,
            total=35,
            seed=1,
            senders=4,
            metrics=metrics,
        )
        samples = parse_prometheus(render_prometheus(metrics))
        completed, shed, failed = self.expected_counts(35)
        assert samples['loadgen_requests_total{mode="open",outcome="completed"}'] == completed
        assert samples['loadgen_requests_total{mode="open",outcome="shed"}'] == shed
        assert samples['loadgen_requests_total{mode="open",outcome="failed"}'] == failed
        assert series_sum(samples, "loadgen_request_seconds_count") == completed

    def test_senders_release_their_connections(self):
        closed = []

        def factory():
            def call(_index):
                return None

            call.close = lambda: closed.append(1)
            return call

        open_loop(factory, rate=10_000, total=12, seed=0, senders=3)
        assert len(closed) == 3
        closed.clear()
        closed_loop(factory, clients=4, requests_per_client=2)
        assert len(closed) == 4

    def test_load_result_rejects_broken_accounting(self):
        with pytest.raises(ValueError):
            LoadResult("open", 10, 5, 2, 1, 1.0, Histogram("x", bounds=LATENCY_BOUNDS))

    def test_parameter_validation(self):
        factory = self.classified_factory()
        with pytest.raises(ValueError):
            open_loop(factory, rate=0, total=1)
        with pytest.raises(ValueError):
            open_loop(factory, rate=1, total=0)
        with pytest.raises(ValueError):
            closed_loop(factory, clients=0, requests_per_client=1)
        with pytest.raises(ValueError):
            closed_loop(factory, clients=1, requests_per_client=0)


# ----------------------------------------------------------------------
# figure_load harness


class TestFigureLoad:
    def test_smoke_sweep_accounts_and_writes_json(self, tmp_path):
        import json

        from repro.harness import figure_load

        out = tmp_path / "load.json"
        result = figure_load.run(
            workers=2,
            queue_depth=2,
            rates=(400.0, 8000.0),
            requests_per_point=24,
            model_size=10,
            seed=5,
            senders=12,
            json_out=str(out),
        )
        assert result.experiment_id == "Figure L"
        # accounting and clean-overload checks must hold at any scale
        by_name = {check.description: check for check in result.checks}
        assert by_name[
            "accounting exact at every point (offered = completed + shed + failed)"
        ].passed
        document = json.loads(out.read_text())
        assert document["seed"] == 5
        assert document["rates_rps"] == [400.0, 8000.0]
        assert set(document["schemes"]) == {"bxsa/http", "xml/http"}
        for points in document["schemes"].values():
            assert len(points) == 2
            for point in points:
                assert (
                    point["offered"]
                    == point["completed"] + point["shed"] + point["failed"]
                    == 24
                )
                assert point["goodput_rps"] > 0

    def test_sweep_is_offered_deterministically(self):
        """Same seed -> same offered schedule (arrival offsets per rung)."""
        assert arrival_schedule(1000.0, 16, seed=5 * 1000 + 0) == arrival_schedule(
            1000.0, 16, seed=5 * 1000 + 0
        )

    def test_connection_ladder_smoke_both_cores(self, tmp_path):
        """A tiny ladder runs both serving cores over real TCP with exact
        accounting, every connection established, and its JSON written."""
        import json

        from repro.harness import figure_load

        out = tmp_path / "ladder.json"
        result = figure_load.run_ladder(
            workers=2,
            queue_depth=32,
            rungs=(8, 24),
            threaded_probe=(4,),
            requests_per_connection=2,
            model_size=5,
            seed=3,
            json_out=str(out),
        )
        assert result.experiment_id == "Figure L (ladder)"
        by_name = {check.description: check for check in result.checks}
        assert by_name[
            "accounting exact at every rung (offered = completed + shed + failed)"
        ].passed
        assert by_name[
            "every connection establishes at every rung (no accept drops)"
        ].passed
        assert by_name[
            "overload is answered cleanly at every rung (failed == 0)"
        ].passed
        document = json.loads(out.read_text())
        assert [p["connections"] for p in document["aio"]] == [8, 24]
        assert document["threaded"][0]["connections"] == 4
        for point in document["threaded"] + document["aio"]:
            assert point["established"] == point["connections"]
            assert point["offered"] == point["completed"] + point["shed"] + point["failed"]


class TestWorkerPoolLifecycle:
    def test_pool_cannot_be_restarted_after_stop(self):
        """Regression: start() after stop() used to silently mix pre- and
        post-drain state (dead workers, an abandoned queue)."""
        pool = WorkerPool(workers=1, queue_depth=2)
        pool.start()
        assert pool.submit(lambda _state: 7).result(timeout=5.0) == 7
        pool.stop()
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            pool.start()

    def test_stop_before_start_is_a_noop_but_poisons_restart(self):
        pool = WorkerPool(workers=1, queue_depth=2)
        pool.stop()  # never started: nothing to drain, no error
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            pool.start()

    def test_completion_callback_runs_exactly_once(self):
        """add_done_callback fires once whether registered before or
        after the task finishes — the aio loop depends on this."""
        calls: list[object] = []
        with WorkerPool(workers=1, queue_depth=4) as pool:
            completion = pool.submit(lambda _state: "done")
            completion.result(timeout=5.0)
            completion.add_done_callback(calls.append)  # after completion
            assert len(calls) == 1 and calls[0] is completion

            gate = threading.Event()
            slow = pool.submit(lambda _state: gate.wait(5))
            slow.add_done_callback(calls.append)  # before completion
            gate.set()
            slow.result(timeout=5.0)
            wait_until(lambda: len(calls) == 2)

    def test_callback_exception_does_not_kill_the_worker(self):
        def bad_callback(_completion):
            raise RuntimeError("callback exploded")

        with WorkerPool(workers=1, queue_depth=4) as pool:
            completion = pool.submit(lambda _state: 1)
            completion.add_done_callback(bad_callback)
            completion.result(timeout=5.0)
            # the worker survived: it can still run tasks
            assert pool.submit(lambda _state: 2).result(timeout=5.0) == 2
