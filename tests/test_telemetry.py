"""Tests for the live-telemetry layer: labelled metrics, exposition,
sampling, the analyze CLI, and RED instrumentation end to end.

The acceptance-criterion test lives in :class:`TestServiceRedEndToEnd`:
run a SOAP/HTTP service, make exchanges, scrape ``GET /metrics`` over the
same listener, and check the ``soap_requests_total`` series sum equals
the number of exchanges made.
"""

import json
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Dispatcher,
    SoapEnvelope,
    SoapFault,
    SoapHttpClient,
    SoapHttpService,
    SoapTcpClient,
    SoapTcpService,
    XMLEncoding,
)
from repro.harness.measure import traced_run
from repro.obs import HeadSampler, MetricsRegistry, render_prometheus, render_varz
from repro.obs.analyze import (
    aggregate,
    critical_path,
    diff_directories,
    main as analyze_main,
    quantile_of,
    reconcile,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
)
from repro.transport import MemoryNetwork
from repro.transport.http import HttpClient, HttpServer
from repro.transport.resilience import RetryBudgetExhausted, RetryPolicy, retry_call
from repro.xdm import element, leaf


def make_dispatcher() -> Dispatcher:
    d = Dispatcher()

    @d.operation("Echo")
    def echo(request: SoapEnvelope):
        return element("EchoResponse", *request.body_root.children)

    @d.operation("Fail")
    def fail(request: SoapEnvelope):
        raise SoapFault("soap:Server", "deliberate failure")

    return d


def echo_envelope() -> SoapEnvelope:
    return SoapEnvelope.wrap(element("Echo", leaf("n", 7, "int")))


def parse_prometheus(text: str) -> dict:
    """Sample lines of the exposition as ``{'name{labels}': float}``."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


def series_sum(samples: dict, name: str) -> float:
    return sum(v for k, v in samples.items() if k.split("{")[0] == name)


# ---------------------------------------------------------------------------
# labelled families


class TestLabelledFamilies:
    def test_labels_fan_out_into_independent_series(self):
        registry = MetricsRegistry()
        registry.counter("req_total", labels={"op": "echo", "status": "ok"}).add(3)
        registry.counter("req_total", labels={"op": "echo", "status": "error"}).add()
        registry.counter("req_total", labels={"op": "sum", "status": "ok"}).add(2)
        snap = registry.snapshot()["counters"]
        assert snap['req_total{op="echo",status="ok"}'] == 3
        assert snap['req_total{op="echo",status="error"}'] == 1
        assert snap['req_total{op="sum",status="ok"}'] == 2

    def test_same_values_get_the_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"k": "v"})
        b = registry.counter("c", labels={"k": "v"})
        assert a is b

    def test_family_rejects_mismatched_label_names(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"op": "echo"})
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("c", labels={"status": "ok"})

    def test_family_rejects_wrong_label_set_on_labels_call(self):
        registry = MetricsRegistry()
        family = registry.counter_family("c", ("op",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(op="echo", extra="nope")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_gauge_family_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("open", labels={"pool": "a"})
        g.inc()
        g.inc()
        g.dec()
        assert registry.snapshot()["gauges"]['open{pool="a"}'] == 1


class TestCardinalityGuard:
    def test_live_writes_hit_the_cap(self):
        registry = MetricsRegistry()
        family = registry.counter_family("c", ("id",), max_series=4)
        for i in range(4):
            family.labels(id=str(i)).add()
        with pytest.raises(LabelCardinalityError, match="cap of 4"):
            family.labels(id="one-too-many")
        # existing series stay usable after the refusal
        family.labels(id="0").add()

    def test_merge_bypasses_the_cap(self):
        """Folding shard registries must be lossless even above the cap."""
        dest = MetricsRegistry()
        dest_family = dest.counter_family("c", ("id",), max_series=2)
        dest_family.labels(id="a").add()
        dest_family.labels(id="b").add()
        source = MetricsRegistry()
        source_family = source.counter_family("c", ("id",), max_series=8)
        for i in range(5):
            source_family.labels(id=f"s{i}").add()
        dest.merge(source)
        assert len(dest_family.series()) == 7


# ---------------------------------------------------------------------------
# histogram quantiles


class TestHistogramQuantile:
    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.quantile(0.5) is None
        assert h.mean == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_quantile_bounds_validation(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_extremes_are_exact(self):
        h = Histogram("h")
        for v in (0.003, 0.04, 0.5):
            h.observe(v)
        assert h.quantile(0.0) == 0.003
        assert h.quantile(1.0) == 0.5

    def test_single_observation_all_quantiles(self):
        h = Histogram("h")
        h.observe(0.25)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.25)

    def test_quantiles_are_monotone_and_clamped(self):
        h = Histogram("h")
        for i in range(1, 101):
            h.observe(i / 1000.0)
        qs = [h.quantile(q / 20.0) for q in range(21)]
        assert qs == sorted(qs)
        assert all(0.001 <= v <= 0.100 for v in qs)
        # bucketed p50 lands within the bucket containing the true median
        assert h.quantile(0.5) == pytest.approx(0.050, rel=0.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=(1.0, 0.5))


# ---------------------------------------------------------------------------
# merge semantics


class TestMergeSemantics:
    def test_counter_gauge_histogram_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").add(2)
        b.counter("c").add(3)
        a.gauge("g").set(4)
        b.gauge("g").set(1)
        a.histogram("h").observe(0.1)
        b.histogram("h").observe(0.3)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 5  # gauges add: shards of one server
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == 0.1
        assert snap["histograms"]["h"]["max"] == 0.3

    def test_type_mismatch_raises(self):
        c, h = Counter("x"), Histogram("x")
        with pytest.raises(TypeError):
            c.merge(h)
        with pytest.raises(TypeError):
            h.merge(c)
        with pytest.raises(TypeError):
            Gauge("x").merge(c)

    def test_histogram_bound_mismatch_raises(self):
        a = Histogram("h", bounds=(0.1, 1.0))
        b = Histogram("h", bounds=(0.2, 2.0))
        with pytest.raises(ValueError, match="refusing to mix scales"):
            a.merge(b)

    def test_differently_labelled_families_refuse_to_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", labels={"op": "echo"})
        b.counter("c", labels={"status": "ok"})
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_hammer_under_concurrent_observes(self):
        """Merging while both sides take writes must not tear or deadlock.

        Writers hammer a source histogram + counter while the main thread
        repeatedly merges into a destination; afterwards one final merge
        must land exactly the writes the destination had not yet seen —
        checked via the internal consistency count == sum(bucket counts).
        """
        source = MetricsRegistry()
        dest = MetricsRegistry()
        go = threading.Event()
        per_thread = 5000
        n_threads = 4

        def writer():
            h = source.histogram("h", labels={"w": "x"})
            c = source.counter("c")
            go.wait()
            for i in range(per_thread):
                h.observe((i % 7) / 100.0)
                c.add()

        threads = [threading.Thread(target=writer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        go.set()
        for _ in range(25):
            probe = MetricsRegistry()
            probe.merge(source)
            snap = probe.snapshot()["histograms"].get('h{w="x"}')
            if snap is not None:
                # the locked snapshot may never tear: bucket counts always
                # account for exactly `count` observations
                assert sum(snap["counts"]) == snap["count"]
        for t in threads:
            t.join()
        dest.merge(source)
        snap = dest.snapshot()
        assert snap["counters"]["c"] == per_thread * n_threads
        assert snap["histograms"]['h{w="x"}']["count"] == per_thread * n_threads

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
            min_size=0,
            max_size=40,
        ),
        st.lists(
            st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
            min_size=0,
            max_size=40,
        ),
        st.lists(
            st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
            min_size=0,
            max_size=40,
        ),
    )
    def test_histogram_merge_is_associative(self, xs, ys, zs):
        """(a ⊕ b) ⊕ c equals a ⊕ (b ⊕ c) on all exported state."""

        def hist(samples):
            h = Histogram("h")
            for v in samples:
                h.observe(v)
            return h

        left = hist(xs)
        ab = hist(ys)
        left.merge(ab)
        c1 = hist(zs)
        left.merge(c1)

        right_tail = hist(ys)
        right_tail.merge(hist(zs))
        right = hist(xs)
        right.merge(right_tail)

        sl, sr = left.snapshot(), right.snapshot()
        assert sl["counts"] == sr["counts"]
        assert sl["count"] == sr["count"]
        assert sl["total"] == pytest.approx(sr["total"])
        assert sl["min"] == sr["min"] and sl["max"] == sr["max"]

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_histogram_is_observation_order_independent(self, samples):
        forward, backward = Histogram("h"), Histogram("h")
        for v in samples:
            forward.observe(v)
        for v in reversed(samples):
            backward.observe(v)
        assert forward.snapshot()["counts"] == backward.snapshot()["counts"]
        assert forward.quantile(0.5) == pytest.approx(backward.quantile(0.5))


# ---------------------------------------------------------------------------
# exposition


class TestExposition:
    def test_prometheus_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("soap.requests", labels={"op": "echo"}).add(2)
        registry.gauge("open_conns").set(3)
        text = render_prometheus(registry)
        assert "# TYPE open_conns gauge\n" in text
        assert "# TYPE soap_requests counter\n" in text  # dot sanitized
        assert 'soap_requests{op="echo"} 2\n' in text
        assert "open_conns 3\n" in text

    def test_prometheus_histogram_is_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", bounds=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        samples = parse_prometheus(render_prometheus(registry))
        assert samples['lat_bucket{le="0.01"}'] == 1
        assert samples['lat_bucket{le="0.1"}'] == 2
        assert samples['lat_bucket{le="1.0"}'] == 3
        assert samples['lat_bucket{le="+Inf"}'] == 4
        assert samples["lat_count"] == 4
        assert samples["lat_sum"] == pytest.approx(5.555)
        assert samples["lat_min"] == pytest.approx(0.005)
        assert samples["lat_max"] == pytest.approx(5.0)

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"msg": 'say "hi"\nnow\\'}).add()
        text = render_prometheus(registry)
        assert '\\"hi\\"' in text
        assert "\\n" in text
        assert "\\\\" in text

    def test_varz_document_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").add(7)
        doc = render_varz(registry, name="svc", uptime_seconds=1.5)
        assert doc["schema"] == "repro.obs.varz/1"
        assert doc["metrics"]["counters"]["c"] == 7
        assert doc["server"] == {"name": "svc", "uptime_seconds": 1.5}
        json.dumps(doc)  # must be JSON-serializable as-is


# ---------------------------------------------------------------------------
# sampling


class TestHeadSampler:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            HeadSampler(1.5)
        with pytest.raises(ValueError):
            HeadSampler(-0.1)

    def test_rate_edges(self):
        assert HeadSampler(1.0).decide("anything") is True
        assert HeadSampler(0.0).decide("anything") is False

    def test_deterministic_across_instances(self):
        keys = [f"figure5-bxsa-n{i}" for i in range(200)]
        a = [HeadSampler(0.3, seed=7).decide(k) for k in keys]
        b = [HeadSampler(0.3, seed=7).decide(k) for k in keys]
        assert a == b
        # a different seed picks a different subset
        c = [HeadSampler(0.3, seed=8).decide(k) for k in keys]
        assert a != c

    def test_kept_fraction_tracks_rate(self):
        sampler = HeadSampler(0.5, seed=1)
        kept = sum(sampler.decide(f"k{i}") for i in range(2000))
        assert 0.4 < kept / 2000 < 0.6

    def test_should_sample_counts_and_count_into(self):
        sampler = HeadSampler(0.5, seed=1)
        for i in range(100):
            sampler.should_sample(f"k{i}")
        assert sampler.sampled + sampler.dropped == 100
        assert sampler.sampled > 0 and sampler.dropped > 0
        registry = MetricsRegistry()
        sampler.count_into(registry)
        snap = registry.snapshot()["gauges"]
        assert snap["obs_traces_sampled"] == sampler.sampled
        assert snap["obs_traces_dropped"] == sampler.dropped


class TestTracedRunSampling:
    """Sampling thins trace files only — metrics stay exact."""

    def _run(self, tmp_path, rate, n=12):
        trace_dir = tmp_path / f"rate{rate}"
        trace_dir.mkdir(parents=True)
        metrics = MetricsRegistry()
        sampler = HeadSampler(rate, seed=3)
        for i in range(n):
            traced_run(
                str(trace_dir),
                f"exchange-{i}",
                lambda: None,
                metrics=metrics,
                sampler=sampler,
                figure="t",
                scheme="s",
            )
        return trace_dir, metrics, sampler

    def test_metrics_exact_under_sampling(self, tmp_path):
        trace_dir, metrics, sampler = self._run(tmp_path, rate=0.5)
        snap = metrics.snapshot()
        counted = snap["counters"]['harness_exchanges_total{figure="t",scheme="s"}']
        assert counted == 12  # every exchange counted, dropped or not
        files = list(trace_dir.glob("*.json"))
        assert len(files) == sampler.sampled
        assert sampler.sampled + sampler.dropped == 12
        assert 0 < len(files) < 12
        assert snap["gauges"]["obs_traces_sampled"] == sampler.sampled
        assert snap["gauges"]["obs_traces_dropped"] == sampler.dropped

    def test_rate_one_keeps_everything(self, tmp_path):
        trace_dir, _, _ = self._run(tmp_path, rate=1.0, n=4)
        assert len(list(trace_dir.glob("*.json"))) == 4

    def test_kept_set_is_deterministic(self, tmp_path):
        dir_a, _, _ = self._run(tmp_path / "a", rate=0.5)
        dir_b, _, _ = self._run(tmp_path / "b", rate=0.5)
        assert sorted(p.name for p in dir_a.glob("*.json")) == sorted(
            p.name for p in dir_b.glob("*.json")
        )


# ---------------------------------------------------------------------------
# analyze CLI


def make_trace(name_total_pairs, scheme="bxsa", reported=None):
    """A minimal but schema-valid trace document for analyze tests."""

    def seg(name, seconds, kind="cpu"):
        return {
            "id": name,
            "name": name,
            "kind": kind,
            "thread": "t",
            "start": 0.0,
            "seconds": seconds,
            "modelled": kind != "cpu",
            "attributes": {"segment": True},
            "events": [],
            "children": [],
        }

    children = [seg(n, s, k) for n, s, k in name_total_pairs]
    total = sum(s for _, s, _ in name_total_pairs)
    root = {
        "id": "root",
        "name": "exchange",
        "kind": "internal",
        "thread": "t",
        "start": 0.0,
        "seconds": total,
        "modelled": False,
        "attributes": {
            "reported_total_seconds": total if reported is None else reported
        },
        "events": [],
        "children": children,
    }
    return {
        "schema": "repro.obs.trace/1",
        "meta": {"scheme": scheme},
        "spans": [root],
        "counters": {},
        "histograms": {},
        "orphan_events": [],
    }


class TestAnalyze:
    SEGMENTS = [("encode", 0.002, "cpu"), ("wire", 0.010, "wire"), ("decode", 0.001, "cpu")]

    def test_critical_path_descends_heaviest_child(self):
        path = critical_path(make_trace(self.SEGMENTS))
        assert [s["name"] for s in path] == ["exchange", "wire"]

    def test_reconcile_ok_and_mismatch(self):
        total, reported, ok = reconcile(make_trace(self.SEGMENTS))
        assert ok and total == pytest.approx(reported)
        _, _, bad = reconcile(make_trace(self.SEGMENTS, reported=0.5))
        assert not bad

    def test_reconcile_without_reported_total_passes(self):
        doc = make_trace(self.SEGMENTS)
        del doc["spans"][0]["attributes"]["reported_total_seconds"]
        total, reported, ok = reconcile(doc)
        assert reported is None and ok
        assert total == pytest.approx(0.013)

    def test_quantile_of(self):
        with pytest.raises(ValueError):
            quantile_of([], 0.5)
        assert quantile_of([3.0], 0.9) == 3.0
        assert quantile_of([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert quantile_of([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert quantile_of([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_aggregate_pools_segments_and_schemes(self):
        docs = [
            make_trace(self.SEGMENTS, scheme="bxsa"),
            make_trace([("encode", 0.004, "cpu"), ("wire", 0.020, "wire")], scheme="soap"),
        ]
        result = aggregate(docs)
        assert result["traces"] == 2
        assert result["segments"]["encode"]["count"] == 2
        assert result["segments"]["encode"]["p50"] == pytest.approx(0.003)
        assert result["segments"]["encode"]["total"] == pytest.approx(0.006)
        assert result["schemes"]["bxsa"]["cpu"] == pytest.approx(0.003)
        assert result["schemes"]["bxsa"]["wire"] == pytest.approx(0.010)
        assert result["schemes"]["soap"]["wire"] == pytest.approx(0.020)

    def test_diff_directories(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        dir_a.mkdir()
        dir_b.mkdir()
        (dir_a / "x.json").write_text(json.dumps(make_trace(self.SEGMENTS)))
        (dir_b / "x.json").write_text(
            json.dumps(make_trace([("encode", 0.002, "cpu"), ("wire", 0.030, "wire")]))
        )
        (dir_a / "only-a.json").write_text(json.dumps(make_trace(self.SEGMENTS)))
        result = diff_directories(str(dir_a), str(dir_b))
        assert result["only_a"] == ["only-a.json"]
        assert result["only_b"] == []
        entry = result["common"]["x.json"]
        assert entry["delta"] == pytest.approx(0.032 - 0.013)
        assert entry["segments"]["wire"] == (pytest.approx(0.010), pytest.approx(0.030))

    def test_cli_critical_path_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(make_trace(self.SEGMENTS)))
        assert analyze_main(["critical-path", str(good)]) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out and "wire" in out

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(make_trace(self.SEGMENTS, reported=9.9)))
        assert analyze_main(["critical-path", str(tmp_path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_cli_aggregate_and_diff(self, tmp_path, capsys):
        (tmp_path / "t.json").write_text(json.dumps(make_trace(self.SEGMENTS)))
        assert analyze_main(["aggregate", str(tmp_path)]) == 0
        assert "per-segment latency" in capsys.readouterr().out
        assert analyze_main(["diff", str(tmp_path), str(tmp_path)]) == 0
        assert "+0.0%" in capsys.readouterr().out

    def test_cli_rejects_empty_input(self, tmp_path):
        assert analyze_main(["critical-path", str(tmp_path)]) == 1

    def test_load_rejects_unknown_schema(self, tmp_path):
        from repro.obs.analyze import load_trace

        path = tmp_path / "t.json"
        path.write_text(json.dumps({"schema": "something/9"}))
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_trace(str(path))


# ---------------------------------------------------------------------------
# HTTP admin surface + hardening


class TestHttpAdminSurface:
    def setup_method(self):
        self.net = MemoryNetwork()

        def handler(request):
            if request.target == "/boom":
                raise RuntimeError("secret internal detail")
            from repro.transport.http import HttpResponse

            return HttpResponse(200, body=b"app")

        self.server = HttpServer(self.net.listen("web"), handler, name="t-web").start()
        self.client = HttpClient(lambda: self.net.connect("web"))

    def teardown_method(self):
        self.client.close()
        self.server.stop()

    def test_metrics_endpoint_serves_prometheus_text(self):
        self.client.get("/app")
        resp = self.client.get("/metrics")
        assert resp.status == 200
        assert resp.headers.get("Content-Type") == "text/plain; version=0.0.4"
        samples = parse_prometheus(resp.body.decode())
        # the /app request is already on the books by the time we scrape
        assert samples['http_requests_total{method="GET",status="2xx"}'] >= 1
        assert series_sum(samples, "http_request_seconds_count") >= 1
        assert samples["http_connections_open"] == 1

    def test_healthz(self):
        resp = self.client.get("/healthz")
        assert resp.status == 200
        payload = json.loads(resp.body)
        assert payload["status"] == "ok"
        assert payload["server"] == "t-web"
        assert payload["uptime_seconds"] >= 0.0
        assert payload["connections_open"] == 1

    def test_varz_includes_recent_error_detail_server_side_only(self):
        resp = self.client.get("/boom")
        assert resp.status == 500
        # the client sees a generic body — no exception detail leaks
        assert resp.body == b"internal server error"
        assert b"secret internal detail" not in resp.body

        varz = json.loads(self.client.get("/varz").body)
        assert varz["schema"] == "repro.obs.varz/1"
        errors = varz["server"]["recent_errors"]
        assert errors[-1]["error"] == "RuntimeError"
        assert errors[-1]["detail"] == "secret internal detail"
        assert errors[-1]["target"] == "/boom"
        counters = varz["metrics"]["counters"]
        assert counters['http_handler_errors_total{type="RuntimeError"}'] == 1

    def test_admin_endpoints_are_get_only(self):
        resp = self.client.post("/metrics", b"nope")
        assert resp.status == 405

    def test_admin_can_be_disabled(self):
        net = MemoryNetwork()
        from repro.transport.http import HttpResponse

        server = HttpServer(
            net.listen("web"), lambda r: HttpResponse(200, body=b"handler"), admin=False
        ).start()
        client = HttpClient(lambda: net.connect("web"))
        try:
            assert client.get("/metrics").body == b"handler"
        finally:
            client.close()
            server.stop()

    def test_stop_drains_and_joins_connection_threads(self):
        self.client.get("/app")  # establish a live keep-alive connection
        assert any(t.is_alive() for t in self.server._conn_threads)
        # the client hanging up lets the connection thread finish its
        # in-flight read; stop() must then join it within the drain budget
        self.client.close()
        self.server.stop()
        assert all(not t.is_alive() for t in self.server._conn_threads)
        assert not self.server._conn_channels

    def test_make_admin_server(self):
        from repro.transport.http.server import make_admin_server

        net = MemoryNetwork()
        registry = MetricsRegistry()
        registry.counter("app_things_total").add(5)
        server = make_admin_server(net.listen("admin"), registry).start()
        client = HttpClient(lambda: net.connect("admin"))
        try:
            samples = parse_prometheus(client.get("/metrics").body.decode())
            assert samples["app_things_total"] == 5
            assert client.get("/other").status == 404
        finally:
            client.close()
            server.stop()


# ---------------------------------------------------------------------------
# RED instrumentation end to end (the acceptance criterion)


class TestServiceRedEndToEnd:
    def setup_method(self):
        self.net = MemoryNetwork()
        self.service = SoapHttpService(
            self.net.listen("web"), make_dispatcher(), name="red-web"
        ).start()

    def teardown_method(self):
        self.service.stop()

    def scrape(self) -> dict:
        scraper = HttpClient(lambda: self.net.connect("web"))
        try:
            resp = scraper.get("/metrics")
            assert resp.status == 200
            return parse_prometheus(resp.body.decode())
        finally:
            scraper.close()

    def test_soap_requests_total_sum_equals_exchanges(self):
        client = SoapHttpClient(lambda: self.net.connect("web"), encoding=XMLEncoding())
        exchanges = 0
        for _ in range(5):
            client.call(echo_envelope())
            exchanges += 1
        for _ in range(2):
            with pytest.raises(SoapFault):
                client.call(SoapEnvelope.wrap(element("Fail")))
            exchanges += 1
        with pytest.raises(SoapFault):
            client.call(SoapEnvelope.wrap(element("NoSuchOp")))
        exchanges += 1
        client.close()

        samples = self.scrape()
        assert series_sum(samples, "soap_requests_total") == exchanges
        # label names render sorted: binding, encoding, operation, status
        ct = XMLEncoding().content_type.split(";")[0].strip()
        ok_key = (
            f'soap_requests_total{{binding="http",encoding="{ct}",'
            f'operation="Echo",status="ok"}}'
        )
        fail_key = (
            f'soap_requests_total{{binding="http",encoding="{ct}",'
            f'operation="Fail",status="server_fault"}}'
        )
        unknown_key = (
            f'soap_requests_total{{binding="http",encoding="{ct}",'
            f'operation="?",status="client_fault"}}'
        )
        assert samples[ok_key] == 5
        assert samples[fail_key] == 2
        assert samples[unknown_key] == 1
        # latency histogram counted every exchange too
        assert series_sum(samples, "soap_request_seconds_count") == exchanges
        # and the HTTP layer agrees (each SOAP exchange is one POST;
        # fault envelopes ride back on 5xx per the SOAP 1.1 HTTP binding)
        post_total = sum(
            v
            for k, v in samples.items()
            if k.startswith('http_requests_total{method="POST"')
        )
        assert post_total == exchanges
        assert samples['http_requests_total{method="POST",status="2xx"}'] == 5

    def test_tcp_service_records_red_metrics(self):
        registry = MetricsRegistry()
        service = SoapTcpService(
            self.net.listen("svc"), make_dispatcher(), metrics=registry
        ).start()
        client = SoapTcpClient(lambda: self.net.connect("svc"), encoding=XMLEncoding())
        try:
            client.call(echo_envelope())
            client.call(echo_envelope())
            with pytest.raises(SoapFault):
                client.call(SoapEnvelope.wrap(element("Fail")))
        finally:
            client.close()
            service.stop()
        samples = parse_prometheus(render_prometheus(registry))
        assert series_sum(samples, "soap_requests_total") == 3
        ct = XMLEncoding().content_type.split(";")[0].strip()
        key = (
            f'soap_requests_total{{binding="tcp",encoding="{ct}",'
            f'operation="Echo",status="ok"}}'
        )
        assert samples[key] == 2


class TestDispatcherAndResilienceMetrics:
    def test_dispatcher_labels_by_operation_and_status(self):
        registry = MetricsRegistry()
        d = make_dispatcher()
        d.metrics = registry
        d.dispatch(echo_envelope())
        with pytest.raises(SoapFault):
            d.dispatch(SoapEnvelope.wrap(element("Fail")))
        with pytest.raises(SoapFault):
            d.dispatch(SoapEnvelope.wrap(element("Nope")))
        snap = registry.snapshot()["counters"]
        assert snap['soap_dispatch_total{operation="Echo",status="ok"}'] == 1
        assert snap['soap_dispatch_total{operation="Fail",status="server_fault"}'] == 1
        # unknown operations share the "?" series — cardinality stays bounded
        assert snap['soap_dispatch_total{operation="?",status="client_fault"}'] == 1

    def test_retry_call_counts_retries_and_exhaustion(self):
        registry = MetricsRegistry()
        policy = RetryPolicy(max_attempts=3, base_backoff=0.0, jitter=0.0)

        def always_fails(attempt):
            raise ConnectionError("down")

        with pytest.raises(RetryBudgetExhausted):
            retry_call(
                always_fails,
                policy,
                retryable=lambda exc: True,
                sleep=lambda s: None,
                metrics=registry,
            )
        snap = registry.snapshot()["counters"]
        assert snap['resilience_retries_total{error="ConnectionError"}'] == 2
        assert snap['resilience_exhausted_total{error="ConnectionError"}'] == 1


# ---------------------------------------------------------------------------
# Concurrency: pipelined keep-alive exchanges, connection caps, drain


class TestServerConcurrency:
    def test_pipelined_keepalive_exchanges_have_no_crosstalk(self):
        """N threads x M exchanges each over its own keep-alive connection:
        every response matches its request, and ``soap_requests_total``
        sums to exactly N*M."""
        n_threads, m_exchanges = 6, 8
        net = MemoryNetwork()
        service = SoapHttpService(net.listen("web"), make_dispatcher()).start()
        mismatches: list[tuple[int, int, str]] = []
        errors: list[BaseException] = []

        def worker(worker_id: int) -> None:
            client = SoapHttpClient(lambda: net.connect("web"), encoding=XMLEncoding())
            try:
                for j in range(m_exchanges):
                    # a unique text payload per exchange
                    marker = f"w{worker_id}-r{j}"
                    request = SoapEnvelope.wrap(
                        element("Echo", leaf("marker", marker, "string"))
                    )
                    response = client.call(request)
                    got = response.body_root.text_content()
                    if got != marker:
                        mismatches.append((worker_id, j, got))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        try:
            assert not errors
            assert mismatches == []
            samples = parse_prometheus(render_prometheus(service.metrics))
            assert series_sum(samples, "soap_requests_total") == n_threads * m_exchanges
        finally:
            service.stop()

    def test_connection_cap_rejects_past_the_limit(self):
        """Connections past ``max_connections`` get a clean 503 +
        Retry-After from the accept loop — never an unbounded thread."""
        from repro.transport.http import HttpResponse
        from repro.transport.http.server import REJECT_RETRY_AFTER

        net = MemoryNetwork()
        server = HttpServer(
            net.listen("web"),
            lambda r: HttpResponse(200, body=b"ok"),
            max_connections=2,
        ).start()
        keepers = [HttpClient(lambda: net.connect("web")) for _ in range(2)]
        try:
            for client in keepers:
                assert client.get("/app").status == 200  # both slots now held
            extra = HttpClient(lambda: net.connect("web"))
            try:
                response = extra.get("/app")
                assert response.status == 503
                assert response.headers.get("Retry-After") == f"{REJECT_RETRY_AFTER:g}"
                assert response.headers.get("Connection") == "close"
            finally:
                extra.close()
            samples = parse_prometheus(render_prometheus(server.metrics))
            assert samples["http_connections_rejected_total"] == 1
            assert samples["http_connections_open"] == 2
        finally:
            for client in keepers:
                client.close()
            server.stop()

    def test_connection_cap_validation(self):
        net = MemoryNetwork()
        with pytest.raises(ValueError):
            HttpServer(net.listen("web"), lambda r: None, max_connections=0)

    def test_stop_drain_deadline_is_configurable_and_completes_under_load(self):
        """``stop(drain_timeout=...)`` finishes in-flight requests within
        the budget and joins every connection thread — no flaky teardown."""
        from repro.transport.http import HttpResponse

        release = threading.Event()
        entered = threading.Semaphore(0)

        def slow_handler(request):
            entered.release()
            release.wait(10)
            return HttpResponse(200, body=b"slow but served")

        net = MemoryNetwork()
        server = HttpServer(net.listen("web"), slow_handler).start()
        results: list[int] = []

        def one_request() -> None:
            client = HttpClient(lambda: net.connect("web"))
            try:
                results.append(client.get("/slow").status)
            finally:
                client.close()

        threads = [
            threading.Thread(target=one_request, daemon=True) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for _ in range(4):  # every request is in flight before the stop
            assert entered.acquire(timeout=5)
        # release the handlers just as the drain begins: stop() must wait
        # for the in-flight responses, not cut them off
        threading.Timer(0.05, release.set).start()
        began = time.monotonic()
        server.stop(drain_timeout=10)
        elapsed = time.monotonic() - began
        assert elapsed < 10
        for t in threads:
            t.join(5)
        assert all(not t.is_alive() for t in threads)
        assert results == [200, 200, 200, 200]
        assert all(not t.is_alive() for t in server._conn_threads)

    def test_stop_with_tiny_drain_budget_is_bounded(self):
        """A handler that never returns cannot hold ``stop()`` hostage:
        past the drain budget the channels are force-closed and stop()
        returns promptly."""
        from repro.transport.http import HttpResponse

        stuck = threading.Event()
        entered = threading.Event()

        def wedged_handler(request):
            entered.set()
            stuck.wait(30)
            return HttpResponse(200, body=b"too late")

        net = MemoryNetwork()
        server = HttpServer(net.listen("web"), wedged_handler).start()
        client = HttpClient(lambda: net.connect("web"))
        thread = threading.Thread(target=lambda: _swallow(client), daemon=True)
        thread.start()
        try:
            assert entered.wait(5)
            began = time.monotonic()
            server.stop(drain_timeout=0.2)
            assert time.monotonic() - began < 5
        finally:
            stuck.set()
            client.close()


def _swallow(client) -> None:
    try:
        client.request("GET", "/wedged")
    except Exception:
        pass


def _wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


class _CloseRaisesOnce:
    """Channel whose first close() raises — the shape of a peer that
    reset the socket between the last read and the server's cleanup."""

    def __init__(self, inner):
        self._inner = inner
        self._raised = False

    def send_all(self, data):
        self._inner.send_all(data)

    def recv(self, max_bytes: int = 65536):
        return self._inner.recv(max_bytes)

    def close(self):
        if not self._raised:
            self._raised = True
            self._inner.close()
            from repro.transport.base import TransportClosed

            raise TransportClosed("connection reset by peer during close")
        self._inner.close()


class _WrappingListener:
    def __init__(self, inner, wrap):
        self._inner = inner
        self._wrap = wrap

    def accept(self):
        return self._wrap(self._inner.accept())

    def close(self):
        self._inner.close()


class TestConnectionLifecycleRegressions:
    """Regression pins for the connection-lifecycle fixes: each of these
    failed (leaked a slot, surfaced an exception, or reused stale state)
    before the corresponding fix."""

    def test_channel_close_raising_does_not_escape_the_connection_thread(self):
        """Regression: the bare ``channel.close()`` in ``_serve_connection``'s
        finally let a TransportError escape and kill the thread noisily."""
        from repro.transport.http import HttpResponse

        net = MemoryNetwork()
        listener = _WrappingListener(net.listen("web"), _CloseRaisesOnce)
        server = HttpServer(listener, lambda r: HttpResponse(200, body=b"ok")).start()
        uncaught: list = []
        previous_hook = threading.excepthook
        threading.excepthook = lambda args: uncaught.append(args)
        try:
            client = HttpClient(lambda: net.connect("web"))
            try:
                response = client.request("GET", "/x", headers={"Connection": "close"})
                assert response.status == 200
            finally:
                client.close()
            # the connection thread runs its finally (close raises) here
            _wait_until(
                lambda: server.metrics.gauge("http_connections_open").snapshot() == 0
            )
            _wait_until(lambda: all(not t.is_alive() for t in server._conn_threads))
        finally:
            threading.excepthook = previous_hook
            server.stop()
        assert uncaught == [], f"connection thread leaked: {uncaught[0]}"

    def test_spawn_failure_releases_the_connection_slot(self):
        """Regression: when ``thread.start()`` raised, the channel stayed
        registered forever, permanently eating a max_connections slot."""
        from repro.transport.http import HttpResponse

        net = MemoryNetwork()
        server = HttpServer(
            net.listen("web"),
            lambda r: HttpResponse(200, body=b"ok"),
            max_connections=1,
        ).start()
        real_start = threading.Thread.start
        failed_once = threading.Event()

        def failing_start(thread):
            if thread.name.endswith("-conn") and not failed_once.is_set():
                failed_once.set()
                raise RuntimeError("cannot spawn: resource pressure")
            real_start(thread)

        threading.Thread.start = failing_start
        try:
            doomed = HttpClient(lambda: net.connect("web"))
            try:
                doomed.get("/x")
            except Exception:
                pass  # the connection whose thread failed to spawn died
            finally:
                doomed.close()
            assert failed_once.is_set()
        finally:
            threading.Thread.start = real_start
        try:
            _wait_until(lambda: not server._conn_channels)
            # the slot must be free again: with max_connections=1 a leaked
            # registration would turn every future connection into a 503
            client = HttpClient(lambda: net.connect("web"))
            try:
                assert client.get("/x").status == 200
            finally:
                client.close()
        finally:
            server.stop()

    def test_connection_cap_slot_reusable_after_close_without_rejection(self):
        """The cap boundary race: a connection arriving as another exits
        must get the freed slot — never a spurious 503."""
        from repro.transport.http import HttpResponse

        net = MemoryNetwork()
        server = HttpServer(
            net.listen("web"),
            lambda r: HttpResponse(200, body=b"ok"),
            max_connections=1,
        ).start()
        try:
            for _ in range(8):
                client = HttpClient(lambda: net.connect("web"))
                try:
                    assert client.get("/x").status == 200
                finally:
                    client.close()
                _wait_until(lambda: not server._conn_channels)
            assert (
                server.metrics.counter("http_connections_rejected_total").snapshot()
                == 0
            )
        finally:
            server.stop()

    def test_connection_churn_at_cap_never_exceeds_and_never_errors(self):
        """Concurrent churn against a cap of 2: every exchange is either
        served (200) or cleanly rejected (503); the open-connection gauge
        never exceeds the cap."""
        from repro.transport.base import TransportError
        from repro.transport.http import HttpResponse

        net = MemoryNetwork()
        server = HttpServer(
            net.listen("web"),
            lambda r: HttpResponse(200, body=b"ok"),
            max_connections=2,
        ).start()
        statuses: list[int] = []
        errors: list[BaseException] = []
        lock = threading.Lock()

        def churn() -> None:
            for _ in range(10):
                client = HttpClient(lambda: net.connect("web"))
                try:
                    status = client.get("/x").status
                    with lock:
                        statuses.append(status)
                except TransportError:
                    pass  # torn down mid-handshake under churn; acceptable
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    with lock:
                        errors.append(exc)
                finally:
                    client.close()

        threads = [threading.Thread(target=churn, daemon=True) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        try:
            assert not errors
            assert statuses and all(s in (200, 503) for s in statuses)
            assert any(s == 200 for s in statuses)
            assert server.metrics.gauge("http_connections_open").snapshot() <= 2
        finally:
            server.stop()

    def test_server_cannot_be_restarted_after_stop(self):
        """Regression: start() after stop() used to silently reuse stale
        connection bookkeeping on a closed listener."""
        from repro.transport.http import HttpResponse

        net = MemoryNetwork()
        server = HttpServer(
            net.listen("web"), lambda r: HttpResponse(200, body=b"ok")
        ).start()
        client = HttpClient(lambda: net.connect("web"))
        try:
            assert client.get("/x").status == 200
        finally:
            client.close()
        server.stop()
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            server.start()

    def test_double_start_still_rejected_while_running(self):
        from repro.transport.http import HttpResponse

        net = MemoryNetwork()
        server = HttpServer(
            net.listen("web"), lambda r: HttpResponse(200, body=b"ok")
        ).start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                server.start()
        finally:
            server.stop()
