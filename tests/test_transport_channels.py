"""Unit tests for channels, framing and instrumentation."""

import threading

import pytest

from repro.transport import (
    ChannelStats,
    InstrumentedChannel,
    MemoryNetwork,
    TcpListener,
    TransportClosed,
    TransportError,
    connect_tcp,
    memory_pipe,
    read_message,
    write_message,
)
from repro.transport.base import BufferedChannel, recv_exactly


class TestMemoryPipe:
    def test_bidirectional(self):
        a, b = memory_pipe()
        a.send_all(b"ping")
        assert b.recv() == b"ping"
        b.send_all(b"pong")
        assert a.recv() == b"pong"

    def test_partial_reads(self):
        a, b = memory_pipe()
        a.send_all(b"abcdef")
        assert b.recv(2) == b"ab"
        assert b.recv(2) == b"cd"
        assert b.recv(10) == b"ef"

    def test_eof_after_close(self):
        a, b = memory_pipe()
        a.send_all(b"bye")
        a.close()
        assert b.recv() == b"bye"
        assert b.recv() == b""
        assert b.recv() == b""  # EOF is sticky

    def test_send_after_close_raises(self):
        a, _b = memory_pipe()
        a.close()
        with pytest.raises(TransportClosed):
            a.send_all(b"x")

    def test_cross_thread(self):
        a, b = memory_pipe()
        received = []

        def reader():
            received.append(recv_exactly(b, 5))

        t = threading.Thread(target=reader)
        t.start()
        a.send_all(b"12")
        a.send_all(b"345")
        t.join(timeout=5)
        assert received == [b"12345"]


class TestMemoryNetwork:
    def test_listen_connect(self):
        net = MemoryNetwork()
        listener = net.listen("svc")
        client = net.connect("svc")
        server = listener.accept()
        client.send_all(b"hello")
        assert server.recv() == b"hello"

    def test_connection_refused(self):
        with pytest.raises(TransportError):
            MemoryNetwork().connect("nobody")

    def test_duplicate_listen_rejected(self):
        net = MemoryNetwork()
        net.listen("svc")
        with pytest.raises(TransportError):
            net.listen("svc")

    def test_listener_close_unblocks_accept(self):
        net = MemoryNetwork()
        listener = net.listen("svc")
        results = []

        def acceptor():
            try:
                listener.accept()
            except TransportClosed:
                results.append("closed")

        t = threading.Thread(target=acceptor)
        t.start()
        listener.close()
        t.join(timeout=5)
        assert results == ["closed"]

    def test_name_freed_after_close(self):
        net = MemoryNetwork()
        net.listen("svc").close()
        net.listen("svc")  # must not raise


class TestSockets:
    def test_loopback_roundtrip(self):
        listener = TcpListener()
        server_side = {}

        def serve():
            ch = listener.accept()
            server_side["data"] = recv_exactly(ch, 4)
            ch.send_all(b"ok")
            ch.close()

        t = threading.Thread(target=serve)
        t.start()
        client = connect_tcp("127.0.0.1", listener.port)
        client.send_all(b"ping")
        assert recv_exactly(client, 2) == b"ok"
        t.join(timeout=5)
        assert server_side["data"] == b"ping"
        client.close()
        listener.close()

    def test_connect_refused(self):
        listener = TcpListener()
        port = listener.port
        listener.close()
        with pytest.raises(TransportError):
            connect_tcp("127.0.0.1", port, timeout=1)


class TestBufferedChannel:
    def test_recv_until_keeps_remainder(self):
        a, b = memory_pipe()
        a.send_all(b"HEAD\r\n\r\nBODY")
        buffered = BufferedChannel(b)
        assert buffered.recv_until(b"\r\n\r\n") == b"HEAD\r\n\r\n"
        assert buffered.recv_exactly(4) == b"BODY"

    def test_recv_until_across_chunks(self):
        a, b = memory_pipe()
        buffered = BufferedChannel(b)
        a.send_all(b"par")
        a.send_all(b"t1|par")
        a.send_all(b"t2|")
        assert buffered.recv_until(b"|") == b"part1|"
        assert buffered.recv_until(b"|") == b"part2|"

    def test_recv_until_eof(self):
        a, b = memory_pipe()
        a.send_all(b"no delimiter")
        a.close()
        with pytest.raises(TransportClosed):
            BufferedChannel(b).recv_until(b"|")

    def test_recv_until_limit(self):
        a, b = memory_pipe()
        a.send_all(b"x" * 2048)
        with pytest.raises(TransportError):
            BufferedChannel(b).recv_until(b"|", max_bytes=1024)


class TestFraming:
    def test_message_roundtrip(self):
        a, b = memory_pipe()
        n = write_message(a, b"payload", "application/bxsa")
        payload, ctype = read_message(b)
        assert payload == b"payload"
        assert ctype == "application/bxsa"
        assert n == len(b"payload") + 2 + 1 + len("application/bxsa") + 4

    def test_empty_payload(self):
        a, b = memory_pipe()
        write_message(a, b"", "text/xml")
        assert read_message(b) == (b"", "text/xml")

    def test_multiple_messages_in_order(self):
        a, b = memory_pipe()
        write_message(a, b"one", "t/a")
        write_message(a, b"two", "t/b")
        assert read_message(b) == (b"one", "t/a")
        assert read_message(b) == (b"two", "t/b")

    def test_bad_magic(self):
        a, b = memory_pipe()
        a.send_all(b"XXjunk")
        with pytest.raises(TransportError):
            read_message(b)

    def test_truncated_message(self):
        a, b = memory_pipe()
        frame = bytearray()

        class Capture:
            def send_all(self, data):
                frame.extend(data)

        write_message(Capture(), b"payload", "t/x")
        a.send_all(bytes(frame[:-3]))
        a.close()
        with pytest.raises(TransportClosed):
            read_message(b)

    def test_oversize_content_type_rejected(self):
        a, _b = memory_pipe()
        with pytest.raises(TransportError):
            write_message(a, b"", "x" * 300)


class TestInstrumentation:
    def test_counts_both_directions(self):
        a, b = memory_pipe()
        ia = InstrumentedChannel(a)
        ib = InstrumentedChannel(b)
        ia.send_all(b"12345")
        assert ib.recv() == b"12345"
        ib.send_all(b"67")
        assert ia.recv() == b"67"
        assert ia.stats.bytes_sent == 5
        assert ia.stats.bytes_received == 2
        assert ib.stats.bytes_sent == 2
        assert ib.stats.bytes_received == 5

    def test_shared_stats_accumulate(self):
        stats = ChannelStats()
        a, b = memory_pipe()
        c, d = memory_pipe()
        ia = InstrumentedChannel(a, stats)
        ic = InstrumentedChannel(c, stats)
        ia.send_all(b"123")
        ic.send_all(b"4567")
        assert stats.bytes_sent == 7
        assert stats.sends == 2

    def test_merge(self):
        s1 = ChannelStats(bytes_sent=10, bytes_received=5, sends=2, receives=1)
        s2 = ChannelStats(bytes_sent=1, bytes_received=2, sends=1, receives=1)
        s1.merge(s2)
        assert s1.bytes_sent == 11
        assert s1.total_bytes == 18

    def test_chunked_reader_counts_one_burst(self):
        """A reader draining one message in many small recv() calls is one
        receive burst, not one per chunk (the seed inflated the count)."""
        a, b = memory_pipe()
        ib = InstrumentedChannel(b)
        a.send_all(b"0123456789")
        chunks = []
        while len(b"".join(chunks)) < 10:
            chunks.append(ib.recv(3))  # 4 chunked reads of one message
        assert b"".join(chunks) == b"0123456789"
        assert ib.stats.bytes_received == 10
        assert ib.stats.receives == 1

    def test_send_breaks_the_recv_run(self):
        """Request/response turns still count one burst per response."""
        a, b = memory_pipe()
        ib = InstrumentedChannel(b)
        for payload in (b"first-reply", b"second-reply"):
            a.send_all(payload)
            ib.send_all(b"req")  # the turn-taking boundary
            got = b""
            while len(got) < len(payload):
                got += ib.recv(4)
            assert got == payload
        assert ib.stats.receives == 2
        assert ib.stats.sends == 2

    def test_empty_recv_does_not_start_a_burst(self):
        a, b = memory_pipe()
        ib = InstrumentedChannel(b)
        a.send_all(b"x")
        a.close()
        assert ib.recv() == b"x"
        assert ib.recv() == b""  # EOF
        assert ib.stats.receives == 1
