"""Unit and integration tests for the from-scratch HTTP stack."""

import threading

import pytest

from repro.transport import MemoryNetwork, TcpListener, connect_tcp, memory_pipe
from repro.transport.base import BufferedChannel
from repro.transport.http import (
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    read_request,
    read_response,
)


class TestMessageCodec:
    def test_request_roundtrip(self):
        req = HttpRequest("POST", "/soap")
        req.headers.set("Content-Type", "text/xml")
        req.body = b"<r/>"
        a, b = memory_pipe()
        a.send_all(req.to_bytes())
        parsed = read_request(BufferedChannel(b))
        assert parsed.method == "POST"
        assert parsed.target == "/soap"
        assert parsed.headers.get("content-type") == "text/xml"
        assert parsed.body == b"<r/>"

    def test_response_roundtrip(self):
        resp = HttpResponse(200, body=b"hello")
        a, b = memory_pipe()
        a.send_all(resp.to_bytes())
        parsed = read_response(BufferedChannel(b))
        assert parsed.status == 200
        assert parsed.reason == "OK"
        assert parsed.body == b"hello"

    def test_header_case_insensitive(self):
        req = HttpRequest("GET", "/")
        req.headers.set("X-Thing", "1")
        assert req.headers.get("x-thing") == "1"
        req.headers.set("x-THING", "2")
        assert req.headers.get("X-Thing") == "2"
        assert len([k for k, _ in req.headers.items() if k.lower() == "x-thing"]) == 1

    def test_keep_alive_defaults(self):
        assert HttpRequest("GET", "/").keep_alive is True
        req = HttpRequest("GET", "/", version="HTTP/1.0")
        assert req.keep_alive is False
        req2 = HttpRequest("GET", "/")
        req2.headers.set("Connection", "close")
        assert req2.keep_alive is False

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /\r\n\r\n",  # missing version
            b"GET / HTTP/2.0\r\n\r\n",  # unsupported version
            b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ],
    )
    def test_malformed_requests_rejected(self, raw):
        a, b = memory_pipe()
        a.send_all(raw)
        a.close()
        with pytest.raises(HttpError):
            read_request(BufferedChannel(b))

    def test_body_requires_full_content_length(self):
        from repro.transport import TransportClosed

        a, b = memory_pipe()
        a.send_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
        a.close()
        with pytest.raises(TransportClosed):
            read_request(BufferedChannel(b))

    def test_conflicting_duplicate_content_length_rejected(self):
        """Repeated Content-Length with differing values is the classic
        request-smuggling shape: two parsers framing the stream
        differently.  Regression: the old parser silently took the first
        value and treated the leftover bytes as the next request."""
        a, b = memory_pipe()
        a.send_all(
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\nhelloXY"
        )
        with pytest.raises(HttpError, match="conflicting Content-Length"):
            read_request(BufferedChannel(b))

    def test_agreeing_duplicate_content_length_collapsed(self):
        """Repeats that agree are recombined (RFC 9110 section 8.6), not
        rejected — proxies in the wild do produce them."""
        a, b = memory_pipe()
        a.send_all(
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello"
        )
        parsed = read_request(BufferedChannel(b))
        assert parsed.body == b"hello"

    def test_conflicting_content_length_in_response_rejected(self):
        a, b = memory_pipe()
        a.send_all(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nokok"
        )
        with pytest.raises(HttpError, match="conflicting Content-Length"):
            read_response(BufferedChannel(b))


def _echo_handler(request: HttpRequest) -> HttpResponse:
    if request.target == "/missing":
        return HttpResponse(404, body=b"not here")
    if request.target == "/boom":
        raise RuntimeError("handler exploded")
    resp = HttpResponse(200, body=request.body or request.target.encode())
    resp.headers.set("Content-Type", request.headers.get("Content-Type") or "text/plain")
    return resp


class TestClientServerOverMemory:
    def setup_method(self):
        self.net = MemoryNetwork()
        self.server = HttpServer(self.net.listen("web"), _echo_handler).start()
        self.client = HttpClient(lambda: self.net.connect("web"))

    def teardown_method(self):
        self.client.close()
        self.server.stop()

    def test_get(self):
        resp = self.client.get("/hello")
        assert resp.ok
        assert resp.body == b"/hello"

    def test_post_echo(self):
        resp = self.client.post("/echo", b"payload bytes")
        assert resp.body == b"payload bytes"

    def test_persistent_connection_reused(self):
        for i in range(5):
            assert self.client.get(f"/r{i}").body == f"/r{i}".encode()

    def test_404(self):
        resp = self.client.get("/missing")
        assert resp.status == 404
        assert not resp.ok

    def test_handler_exception_becomes_500(self):
        resp = self.client.get("/boom")
        assert resp.status == 500
        # the body is deliberately generic: exception detail stays server-side
        assert resp.body == b"internal server error"
        assert b"handler exploded" not in resp.body
        assert b"RuntimeError" not in resp.body
        # ...where it is still observable
        assert self.server.recent_errors[-1]["detail"] == "handler exploded"
        assert self.server.recent_errors[-1]["error"] == "RuntimeError"

    def test_connection_close_honoured(self):
        resp = self.client.request("GET", "/x", headers={"Connection": "close"})
        assert resp.ok
        # next request transparently reconnects
        assert self.client.get("/y").ok

    def test_concurrent_clients(self):
        errors = []

        def worker(n):
            try:
                client = HttpClient(lambda: self.net.connect("web"))
                for i in range(10):
                    resp = client.post("/w", f"{n}:{i}".encode())
                    assert resp.body == f"{n}:{i}".encode()
                client.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert errors == []

    def test_large_body(self):
        body = bytes(range(256)) * 4096  # 1 MiB
        resp = self.client.post("/big", body)
        assert resp.body == body


class TestClientServerOverSockets:
    def test_real_tcp_roundtrip(self):
        listener = TcpListener()
        port = listener.port
        server = HttpServer(listener, _echo_handler).start()
        try:
            client = HttpClient(lambda: connect_tcp("127.0.0.1", port))
            resp = client.post("/sock", b"over real tcp")
            assert resp.body == b"over real tcp"
            client.close()
        finally:
            server.stop()
