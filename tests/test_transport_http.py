"""Unit and integration tests for the from-scratch HTTP stack."""

import threading

import pytest

from repro.transport import MemoryNetwork, TcpListener, connect_tcp, memory_pipe
from repro.transport.base import BufferedChannel
from repro.transport.http import (
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    read_request,
    read_response,
)


class TestMessageCodec:
    def test_request_roundtrip(self):
        req = HttpRequest("POST", "/soap")
        req.headers.set("Content-Type", "text/xml")
        req.body = b"<r/>"
        a, b = memory_pipe()
        a.send_all(req.to_bytes())
        parsed = read_request(BufferedChannel(b))
        assert parsed.method == "POST"
        assert parsed.target == "/soap"
        assert parsed.headers.get("content-type") == "text/xml"
        assert parsed.body == b"<r/>"

    def test_response_roundtrip(self):
        resp = HttpResponse(200, body=b"hello")
        a, b = memory_pipe()
        a.send_all(resp.to_bytes())
        parsed = read_response(BufferedChannel(b))
        assert parsed.status == 200
        assert parsed.reason == "OK"
        assert parsed.body == b"hello"

    def test_header_case_insensitive(self):
        req = HttpRequest("GET", "/")
        req.headers.set("X-Thing", "1")
        assert req.headers.get("x-thing") == "1"
        req.headers.set("x-THING", "2")
        assert req.headers.get("X-Thing") == "2"
        assert len([k for k, _ in req.headers.items() if k.lower() == "x-thing"]) == 1

    def test_keep_alive_defaults(self):
        assert HttpRequest("GET", "/").keep_alive is True
        req = HttpRequest("GET", "/", version="HTTP/1.0")
        assert req.keep_alive is False
        req2 = HttpRequest("GET", "/")
        req2.headers.set("Connection", "close")
        assert req2.keep_alive is False

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /\r\n\r\n",  # missing version
            b"GET / HTTP/2.0\r\n\r\n",  # unsupported version
            b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\nG\r\n",
        ],
    )
    def test_malformed_requests_rejected(self, raw):
        a, b = memory_pipe()
        a.send_all(raw)
        a.close()
        with pytest.raises(HttpError):
            read_request(BufferedChannel(b))

    def test_body_requires_full_content_length(self):
        from repro.transport import TransportClosed

        a, b = memory_pipe()
        a.send_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
        a.close()
        with pytest.raises(TransportClosed):
            read_request(BufferedChannel(b))

    def test_conflicting_duplicate_content_length_rejected(self):
        """Repeated Content-Length with differing values is the classic
        request-smuggling shape: two parsers framing the stream
        differently.  Regression: the old parser silently took the first
        value and treated the leftover bytes as the next request."""
        a, b = memory_pipe()
        a.send_all(
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\nhelloXY"
        )
        with pytest.raises(HttpError, match="conflicting Content-Length"):
            read_request(BufferedChannel(b))

    def test_agreeing_duplicate_content_length_collapsed(self):
        """Repeats that agree are recombined (RFC 9110 section 8.6), not
        rejected — proxies in the wild do produce them."""
        a, b = memory_pipe()
        a.send_all(
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello"
        )
        parsed = read_request(BufferedChannel(b))
        assert parsed.body == b"hello"

    def test_conflicting_content_length_in_response_rejected(self):
        a, b = memory_pipe()
        a.send_all(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nokok"
        )
        with pytest.raises(HttpError, match="conflicting Content-Length"):
            read_response(BufferedChannel(b))


def _echo_handler(request: HttpRequest) -> HttpResponse:
    if request.target == "/missing":
        return HttpResponse(404, body=b"not here")
    if request.target == "/boom":
        raise RuntimeError("handler exploded")
    resp = HttpResponse(200, body=request.body or request.target.encode())
    resp.headers.set("Content-Type", request.headers.get("Content-Type") or "text/plain")
    return resp


class TestClientServerOverMemory:
    def setup_method(self):
        self.net = MemoryNetwork()
        self.server = HttpServer(self.net.listen("web"), _echo_handler).start()
        self.client = HttpClient(lambda: self.net.connect("web"))

    def teardown_method(self):
        self.client.close()
        self.server.stop()

    def test_get(self):
        resp = self.client.get("/hello")
        assert resp.ok
        assert resp.body == b"/hello"

    def test_post_echo(self):
        resp = self.client.post("/echo", b"payload bytes")
        assert resp.body == b"payload bytes"

    def test_persistent_connection_reused(self):
        for i in range(5):
            assert self.client.get(f"/r{i}").body == f"/r{i}".encode()

    def test_404(self):
        resp = self.client.get("/missing")
        assert resp.status == 404
        assert not resp.ok

    def test_handler_exception_becomes_500(self):
        resp = self.client.get("/boom")
        assert resp.status == 500
        # the body is deliberately generic: exception detail stays server-side
        assert resp.body == b"internal server error"
        assert b"handler exploded" not in resp.body
        assert b"RuntimeError" not in resp.body
        # ...where it is still observable
        assert self.server.recent_errors[-1]["detail"] == "handler exploded"
        assert self.server.recent_errors[-1]["error"] == "RuntimeError"

    def test_connection_close_honoured(self):
        resp = self.client.request("GET", "/x", headers={"Connection": "close"})
        assert resp.ok
        # next request transparently reconnects
        assert self.client.get("/y").ok

    def test_concurrent_clients(self):
        errors = []

        def worker(n):
            try:
                client = HttpClient(lambda: self.net.connect("web"))
                for i in range(10):
                    resp = client.post("/w", f"{n}:{i}".encode())
                    assert resp.body == f"{n}:{i}".encode()
                client.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert errors == []

    def test_large_body(self):
        body = bytes(range(256)) * 4096  # 1 MiB
        resp = self.client.post("/big", body)
        assert resp.body == body


class TestClientServerOverSockets:
    def test_real_tcp_roundtrip(self):
        listener = TcpListener()
        port = listener.port
        server = HttpServer(listener, _echo_handler).start()
        try:
            client = HttpClient(lambda: connect_tcp("127.0.0.1", port))
            resp = client.post("/sock", b"over real tcp")
            assert resp.body == b"over real tcp"
            client.close()
        finally:
            server.stop()


class TestChunkedTransfer:
    """HTTP/1.1 chunked Transfer-Encoding through the threaded stack."""

    def setup_method(self):
        self.net = MemoryNetwork()

    def _serve(self, handler, **kwargs):
        server = HttpServer(self.net.listen("web"), handler, **kwargs).start()
        client = HttpClient(lambda: self.net.connect("web"))
        return server, client

    def test_chunked_request_buffered_for_plain_handler(self):
        """Without stream_bodies the server assembles a chunked body so
        ordinary handlers keep seeing request.body whole."""
        server, client = self._serve(_echo_handler)
        try:
            resp = client.post("/echo", body=iter([b"alpha-", b"beta-", b"gamma"]))
            assert resp.status == 200
            assert resp.body == b"alpha-beta-gamma"
        finally:
            client.close()
            server.stop()

    def test_streamed_request_and_response_end_to_end(self):
        """stream_bodies server + iterable client body + stream_response:
        no side ever holds the message whole, and keep-alive survives."""
        seen = []

        def handler(request):
            total = 0
            for piece in request.stream if request.stream is not None else ():
                total += len(piece)
            seen.append((dict(request.trailers.items()) if request.trailers else {}, total))
            response = HttpResponse(200)
            response.stream = (b"out-%d" % i for i in range(4))
            return response

        server, client = self._serve(handler, stream_bodies=True)
        try:
            resp = client.request(
                "POST",
                "/up",
                body=iter([b"x" * 7000 for _ in range(10)]),
                trailers={"X-Checksum": "abc"},
                stream_response=True,
            )
            assert resp.status == 200
            assert b"".join(resp.stream) == b"out-0out-1out-2out-3"
            # the connection is reusable afterwards: framing stayed exact
            assert client.get("/again", stream_response=False).status == 200
        finally:
            client.close()
            server.stop()
        assert seen[0] == ({"X-Checksum": "abc"}, 70000)

    def test_unread_streamed_body_is_drained_for_keep_alive(self):
        """A streaming handler that ignores the request body must not
        poison the connection: the server drains the rest itself."""

        def handler(request):
            return HttpResponse(204)

        server, client = self._serve(handler, stream_bodies=True)
        try:
            first = client.post("/ignored", body=iter([b"y" * 5000] * 4))
            assert first.status == 204
            # a second exchange frames correctly only if the unread
            # chunked body left the channel before this request's head
            assert client.get("/next").status == 204
        finally:
            client.close()
            server.stop()

    def test_unsupported_transfer_encoding_gets_501_and_close(self):
        server, _client = self._serve(_echo_handler)
        try:
            channel = BufferedChannel(self.net.connect("web"))
            channel.send_all(
                b"POST / HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: gzip\r\n\r\n"
            )
            response = read_response(channel)
            assert response.status == 501
            assert (response.headers.get("Connection") or "").lower() == "close"
        finally:
            server.stop()

    def test_te_with_content_length_gets_400(self):
        server, _client = self._serve(_echo_handler)
        try:
            channel = BufferedChannel(self.net.connect("web"))
            channel.send_all(
                b"POST / HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\n"
            )
            assert read_response(channel).status == 400
        finally:
            server.stop()

    def test_chunked_pipelining_residue_preserved(self):
        """Bytes past the terminal chunk belong to the next request; the
        reader must push them back, not swallow them."""
        server, _client = self._serve(_echo_handler)
        try:
            channel = BufferedChannel(self.net.connect("web"))
            channel.send_all(
                b"POST /one HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"5\r\nhello\r\n0\r\n\r\n"
                b"POST /two HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi"
            )
            assert read_response(channel).body == b"hello"
            assert read_response(channel).body == b"hi"
        finally:
            server.stop()
