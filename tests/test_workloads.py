"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.bxsa import decode, encode
from repro.netcdf import read_dataset_bytes, write_dataset_bytes
from repro.workloads import lead_dataset, sensor_stream
from repro.workloads.datamining import block_from_bxdm, block_to_bxdm, feature_block
from repro.workloads.sensors import SensorReading
from repro.xmlcodec import serialize


class TestLeadDataset:
    def test_deterministic(self):
        a = lead_dataset(100, seed=7)
        b = lead_dataset(100, seed=7)
        np.testing.assert_array_equal(a.values, b.values)
        assert not np.array_equal(a.values, lead_dataset(100, seed=8).values)

    def test_shapes_and_dtypes(self):
        ds = lead_dataset(1000)
        assert ds.model_size == 1000
        assert ds.index.dtype == np.dtype("i4")
        assert ds.values.dtype == np.dtype("f8")
        assert ds.native_bytes == 12000

    def test_bxdm_roundtrip(self):
        from repro.workloads.lead import LeadDataset

        ds = lead_dataset(64)
        back = LeadDataset.from_bxdm(decode(encode(ds.to_bxdm())))
        np.testing.assert_array_equal(back.index, ds.index)
        np.testing.assert_array_equal(back.values, ds.values)

    def test_netcdf_roundtrip(self):
        ds = lead_dataset(64)
        out = read_dataset_bytes(write_dataset_bytes(ds.to_netcdf()))
        np.testing.assert_array_equal(out.variables["index"].data, ds.index)
        np.testing.assert_array_equal(out.variables["values"].data, ds.values)

    def test_verify_passes_on_generated(self):
        record = lead_dataset(500).verify()
        assert record["ok"] is True
        assert record["valid"] == 500
        assert record["index_ok"] is True

    def test_verify_catches_corruption(self):
        ds = lead_dataset(100)
        ds.values.setflags(write=True)
        ds.values[13] = 1e9  # out of physical range
        record = ds.verify()
        assert record["ok"] is False
        assert record["valid"] == 99

    def test_verify_catches_bad_index(self):
        ds = lead_dataset(10)
        ds.index.setflags(write=True)
        ds.index[0] = 5
        assert ds.verify()["index_ok"] is False

    def test_values_print_short(self):
        """Table 1 calibration: the XML lexical forms must be ≈5-7 chars,
        like the LEAD sample's, not 17-char full-precision doubles."""
        ds = lead_dataset(1000)
        mean_len = np.mean([len(repr(v)) for v in ds.values.tolist()])
        assert mean_len < 7.5

    def test_table1_xml_overhead_band(self):
        """XML 1.0 overhead at model size 1000 lands near the paper's 99 %."""
        ds = lead_dataset(1000)
        xml = serialize(ds.to_document(), emit_types=False).encode()
        overhead = (len(xml) - ds.native_bytes) / ds.native_bytes
        assert 0.6 < overhead < 1.4

    def test_zero_model_size(self):
        ds = lead_dataset(0)
        assert ds.model_size == 0
        assert ds.verify()["ok"] is True


class TestSensors:
    def test_stream_deterministic_and_small(self):
        readings = list(sensor_stream(20, n_channels=8))
        assert len(readings) == 20
        assert readings[0].channels.dtype == np.dtype("f4")
        blob = encode(readings[0].to_bxdm())
        assert len(blob) < 256  # genuinely small messages

    def test_bxdm_roundtrip(self):
        reading = next(iter(sensor_stream(1)))
        back = SensorReading.from_bxdm(decode(encode(reading.to_bxdm())))
        assert back.station == reading.station
        assert back.tick == reading.tick
        np.testing.assert_array_equal(back.channels, reading.channels)

    def test_station_round_robin(self):
        stations = [r.station for r in sensor_stream(8, n_stations=4)]
        assert stations == [0, 1, 2, 3, 0, 1, 2, 3]


class TestDataMining:
    def test_block_roundtrip(self):
        block = feature_block(50, 20, seed=3)
        node = block_to_bxdm(block, block_id=9)
        bid, back = block_from_bxdm(decode(encode(node)))
        assert bid == 9
        np.testing.assert_array_equal(back, block)

    def test_shape_mismatch_detected(self):
        node = block_to_bxdm(feature_block(4, 4))
        from repro.xdm.path import children_named

        children_named(node, "rows")[0].value = 5
        with pytest.raises(ValueError):
            block_from_bxdm(node)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            block_to_bxdm(np.zeros(5))
