"""Property-based tests (hypothesis) for the XBS layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
import hypothesis.extra.numpy as hnp

from repro.xbs import (
    BIG_ENDIAN,
    LITTLE_ENDIAN,
    TypeCode,
    XBSReader,
    XBSWriter,
    decode_vls,
    encode_vls,
    type_code_for_dtype,
)

uint64s = st.integers(min_value=0, max_value=2**64 - 1)
orders = st.sampled_from([LITTLE_ENDIAN, BIG_ENDIAN])

_NUMERIC_DTYPES = ["i1", "i2", "i4", "i8", "u1", "u2", "u4", "u8", "f4", "f8"]


@given(uint64s)
def test_vls_roundtrip(value):
    decoded, offset = decode_vls(encode_vls(value))
    assert decoded == value
    assert offset == len(encode_vls(value))


@given(st.lists(uint64s, max_size=20))
def test_vls_concatenation_self_delimits(values):
    blob = b"".join(encode_vls(v) for v in values)
    out, pos = [], 0
    while pos < len(blob):
        v, pos = decode_vls(blob, pos)
        out.append(v)
    assert out == values


@given(orders, st.sampled_from(_NUMERIC_DTYPES), st.data())
def test_scalar_roundtrip(order, dtype_str, data):
    dt = np.dtype(dtype_str)
    code = type_code_for_dtype(dt)
    if dt.kind == "f":
        value = data.draw(st.floats(allow_nan=False, width=dt.itemsize * 8))
    else:
        info = np.iinfo(dt)
        value = data.draw(st.integers(min_value=int(info.min), max_value=int(info.max)))
    w = XBSWriter(order)
    w.write_scalar(code, value)
    r = XBSReader(w.getvalue(), order)
    out = r.read_scalar(code)
    if dt.kind == "f":
        assert out == np.dtype(dt).type(value)
    else:
        assert out == value


@given(orders, st.sampled_from(_NUMERIC_DTYPES), st.data())
@settings(max_examples=60)
def test_array_roundtrip(order, dtype_str, data):
    arr = data.draw(
        hnp.arrays(
            dtype=np.dtype(dtype_str),
            shape=st.integers(0, 64),
            elements={"allow_nan": False} if dtype_str.startswith("f") else None,
        )
    )
    w = XBSWriter(order)
    w.write_array(arr)
    r = XBSReader(w.getvalue(), order)
    out = r.read_array(type_code_for_dtype(arr.dtype))
    np.testing.assert_array_equal(out.astype(arr.dtype), arr)


@given(orders, st.text(max_size=200))
def test_string_roundtrip(order, text):
    w = XBSWriter(order)
    w.write_string(text)
    r = XBSReader(w.getvalue(), order)
    assert r.read_string() == text


@given(st.data())
@settings(max_examples=40)
def test_mixed_sequence_roundtrip(data):
    """A random interleaving of scalars, strings and arrays round-trips."""
    order = data.draw(orders)
    ops = data.draw(
        st.lists(
            st.sampled_from(["i32", "f64", "str", "arr"]),
            max_size=12,
        )
    )
    w = XBSWriter(order)
    expected = []
    for op in ops:
        if op == "i32":
            v = data.draw(st.integers(-(2**31), 2**31 - 1))
            w.write_int32(v)
            expected.append(("i32", v))
        elif op == "f64":
            v = data.draw(st.floats(allow_nan=False))
            w.write_float64(v)
            expected.append(("f64", v))
        elif op == "str":
            v = data.draw(st.text(max_size=30))
            w.write_string(v)
            expected.append(("str", v))
        else:
            v = data.draw(hnp.arrays(np.dtype("i8"), st.integers(0, 16)))
            w.write_array(v)
            expected.append(("arr", v))
    r = XBSReader(w.getvalue(), order)
    for kind, v in expected:
        if kind == "i32":
            assert r.read_int32() == v
        elif kind == "f64":
            assert r.read_float64() == v
        elif kind == "str":
            assert r.read_string() == v
        else:
            np.testing.assert_array_equal(r.read_array(TypeCode.INT64).astype("i8"), v)
    assert r.at_end()


@given(orders, st.data())
@settings(max_examples=60)
def test_bool_scalar_run_and_array_decodes_are_element_equal(order, data):
    """ISSUE satellite: for the same wire bytes — including hostile >1
    payload bytes no conforming writer emits — the scalar-run decode
    (``read_scalars``) and the array decode (``read_array``, both copy
    modes) of a BOOL run must agree element for element."""
    payload = data.draw(st.lists(st.integers(0, 255), min_size=0, max_size=32))
    count = len(payload)
    # hand-build the wire form: VLS count, then one byte per element
    # (BOOL is 1-byte aligned, so no pad bytes are involved)
    blob = encode_vls(count) + bytes(payload)
    raw = XBSReader(blob, order)
    assert raw.read_vls() == count
    scalars = raw.read_scalars(TypeCode.BOOL, count)
    assert scalars == tuple(bool(b) for b in payload)
    for copy in (False, True):
        out = XBSReader(blob, order).read_array(TypeCode.BOOL, copy=copy)
        assert out.dtype == np.bool_
        np.testing.assert_array_equal(out, np.array(scalars, dtype=np.bool_))


@given(orders, st.sampled_from(_NUMERIC_DTYPES), st.data())
@settings(max_examples=60)
def test_read_scalars_into_matches_read_scalars(order, dtype_str, data):
    """The preallocated-buffer bulk path decodes the same values as the
    tuple-returning scalar run."""
    dt = np.dtype(dtype_str)
    code = type_code_for_dtype(dt)
    arr = data.draw(
        hnp.arrays(
            dtype=dt,
            shape=st.integers(0, 32),
            elements={"allow_nan": False} if dt.kind == "f" else None,
        )
    )
    w = XBSWriter(order)
    w.write_scalars(code, arr.tolist())
    blob = w.getvalue()
    expected = XBSReader(blob, order).read_scalars(code, arr.size)
    out = np.empty(arr.size, dtype=dt)
    returned = XBSReader(blob, order).read_scalars_into(code, out)
    assert returned is out
    np.testing.assert_array_equal(out, np.array(expected, dtype=dt))


@given(st.binary(max_size=64), orders)
def test_reader_never_reads_past_end(blob, order):
    """Arbitrary garbage either decodes or raises XBSDecodeError — no crashes."""
    from repro.xbs import XBSDecodeError

    r = XBSReader(blob, order)
    try:
        while not r.at_end():
            r.read_vls()
    except XBSDecodeError:
        pass
