"""Unit tests for the XBS writer/reader pair."""

import numpy as np
import pytest

from repro.xbs import (
    BIG_ENDIAN,
    LITTLE_ENDIAN,
    TypeCode,
    XBSDecodeError,
    XBSEncodeError,
    XBSReader,
    XBSWriter,
    dtype_for,
    type_code_for_dtype,
)


class TestScalars:
    @pytest.mark.parametrize("order", [LITTLE_ENDIAN, BIG_ENDIAN])
    def test_int_roundtrip_all_widths(self, order):
        w = XBSWriter(order)
        w.write_int8(-7)
        w.write_int16(-3000)
        w.write_int32(-(2**30))
        w.write_int64(-(2**62))
        w.write_uint8(200)
        w.write_uint16(60000)
        w.write_uint32(2**31)
        w.write_uint64(2**63)
        r = XBSReader(w.getvalue(), order)
        assert r.read_int8() == -7
        assert r.read_int16() == -3000
        assert r.read_int32() == -(2**30)
        assert r.read_int64() == -(2**62)
        assert r.read_uint8() == 200
        assert r.read_uint16() == 60000
        assert r.read_uint32() == 2**31
        assert r.read_uint64() == 2**63
        assert r.at_end()

    def test_float_roundtrip(self):
        w = XBSWriter()
        w.write_float32(1.5)
        w.write_float64(3.141592653589793)
        r = XBSReader(w.getvalue())
        assert r.read_float32() == 1.5
        assert r.read_float64() == 3.141592653589793

    def test_bool_roundtrip(self):
        w = XBSWriter()
        w.write_scalar(TypeCode.BOOL, True)
        w.write_scalar(TypeCode.BOOL, False)
        r = XBSReader(w.getvalue())
        assert r.read_scalar(TypeCode.BOOL) is True
        assert r.read_scalar(TypeCode.BOOL) is False

    def test_range_check(self):
        w = XBSWriter()
        with pytest.raises(XBSEncodeError):
            w.write_int8(128)
        with pytest.raises(XBSEncodeError):
            w.write_uint16(-1)
        with pytest.raises(XBSEncodeError):
            w.write_uint64(2**64)

    def test_endianness_on_wire(self):
        w_le = XBSWriter(LITTLE_ENDIAN)
        w_le.write_uint32(0x01020304)
        w_be = XBSWriter(BIG_ENDIAN)
        w_be.write_uint32(0x01020304)
        assert w_le.getvalue() == b"\x04\x03\x02\x01"
        assert w_be.getvalue() == b"\x01\x02\x03\x04"


class TestAlignment:
    def test_pad_inserted_before_wider_type(self):
        w = XBSWriter()
        w.write_int8(1)  # offset 0..1
        w.write_int32(2)  # must pad to offset 4
        assert w.tell() == 8
        r = XBSReader(w.getvalue())
        assert r.read_int8() == 1
        assert r.read_int32() == 2

    def test_no_pad_when_aligned(self):
        w = XBSWriter()
        w.write_int32(1)
        w.write_int32(2)
        assert w.tell() == 8

    def test_alignment_disabled(self):
        w = XBSWriter(align=False)
        w.write_int8(1)
        w.write_int64(2)
        assert w.tell() == 9
        r = XBSReader(w.getvalue(), align=False)
        assert r.read_int8() == 1
        assert r.read_int64() == 2

    def test_base_offset_preserves_alignment(self):
        # Simulate a frame payload that starts at absolute offset 3.
        w = XBSWriter()
        w.write_bytes(b"abc")
        start = w.tell()
        w.write_int32(42)
        data = w.getvalue()
        r = XBSReader(data[start:], base=start)
        assert r.read_int32() == 42


class TestStringsAndBytes:
    def test_string_roundtrip(self):
        w = XBSWriter()
        w.write_string("héllo ☃")
        r = XBSReader(w.getvalue())
        assert r.read_string() == "héllo ☃"

    def test_empty_string(self):
        w = XBSWriter()
        w.write_string("")
        r = XBSReader(w.getvalue())
        assert r.read_string() == ""

    def test_invalid_utf8_rejected(self):
        w = XBSWriter()
        w.write_vls(2)
        w.write_bytes(b"\xff\xfe")
        r = XBSReader(w.getvalue())
        with pytest.raises(XBSDecodeError):
            r.read_string()

    def test_read_bytes_is_view(self):
        buf = bytearray()
        w = XBSWriter()
        w.write_bytes(b"abcdef")
        data = bytearray(w.getvalue())
        r = XBSReader(data)
        view = r.read_bytes(6)
        data[0] = ord(b"z")
        assert bytes(view) == b"zbcdef"


class TestArrays:
    @pytest.mark.parametrize("dtype", ["int8", "int16", "int32", "int64", "float32", "float64"])
    @pytest.mark.parametrize("order", [LITTLE_ENDIAN, BIG_ENDIAN])
    def test_roundtrip(self, dtype, order):
        values = np.arange(17, dtype=dtype)
        w = XBSWriter(order)
        w.write_array(values)
        r = XBSReader(w.getvalue(), order)
        out = r.read_array(type_code_for_dtype(dtype))
        np.testing.assert_array_equal(out.astype(dtype), values)

    def test_empty_array(self):
        w = XBSWriter()
        w.write_array(np.array([], dtype="f8"))
        r = XBSReader(w.getvalue())
        out = r.read_array(TypeCode.FLOAT64)
        assert out.size == 0

    def test_zero_copy_view(self):
        values = np.arange(8, dtype="f8")
        w = XBSWriter()
        w.write_array(values)
        data = w.getvalue()
        r = XBSReader(data)
        out = r.read_array(TypeCode.FLOAT64)
        # A view over an immutable bytes object is read-only and aliases it.
        assert not out.flags.writeable
        assert out.base is not None

    def test_copy_requested(self):
        values = np.arange(8, dtype="f8")
        w = XBSWriter()
        w.write_array(values)
        r = XBSReader(w.getvalue())
        out = r.read_array(TypeCode.FLOAT64, copy=True)
        assert out.flags.writeable

    def test_multidimensional_rejected(self):
        w = XBSWriter()
        with pytest.raises(XBSEncodeError):
            w.write_array(np.zeros((2, 2)))

    def test_mixed_byte_order_input_normalized(self):
        values = np.arange(5, dtype=">f8")
        w = XBSWriter(LITTLE_ENDIAN)
        w.write_array(values)
        r = XBSReader(w.getvalue(), LITTLE_ENDIAN)
        out = r.read_array(TypeCode.FLOAT64)
        np.testing.assert_array_equal(out.astype("f8"), values.astype("f8"))

    def test_truncated_array_detected(self):
        w = XBSWriter()
        w.write_array(np.arange(10, dtype="f8"))
        data = w.getvalue()[:-4]
        r = XBSReader(data)
        with pytest.raises(XBSDecodeError):
            r.read_array(TypeCode.FLOAT64)

    def test_interleaved_scalars_and_arrays(self):
        w = XBSWriter()
        w.write_uint8(9)
        w.write_array(np.arange(3, dtype="i4"))
        w.write_float64(2.5)
        w.write_array(np.arange(4, dtype="f8") / 3.0)
        r = XBSReader(w.getvalue())
        assert r.read_uint8() == 9
        np.testing.assert_array_equal(r.read_array(TypeCode.INT32), np.arange(3, dtype="i4"))
        assert r.read_float64() == 2.5
        np.testing.assert_allclose(r.read_array(TypeCode.FLOAT64), np.arange(4) / 3.0)
        assert r.at_end()


class TestTypeCodes:
    def test_dtype_roundtrip(self):
        for code in TypeCode:
            if code is TypeCode.STRING:
                continue
            dt = dtype_for(code)
            if code is TypeCode.BOOL:
                continue  # BOOL maps onto u1 storage
            assert type_code_for_dtype(dt) == code

    def test_unsupported_dtype(self):
        with pytest.raises(XBSEncodeError):
            type_code_for_dtype(np.complex128)

    def test_sizes(self):
        assert TypeCode.INT8.size == 1
        assert TypeCode.FLOAT64.size == 8
        assert TypeCode.UINT32.size == 4

    def test_bool_dtype_maps_to_bool_code(self):
        assert type_code_for_dtype(np.bool_) == TypeCode.BOOL


class TestScalarRuns:
    """Bulk homogeneous runs: write_scalars/read_scalars must be
    byte-identical to N single-scalar calls, in both directions."""

    RUNS = [
        (TypeCode.INT8, [-7, 0, 127, -128]),
        (TypeCode.UINT16, [0, 60000, 7]),
        (TypeCode.INT32, [-(2**31), 2**31 - 1, 5]),
        (TypeCode.INT64, [-(2**62), 3]),
        (TypeCode.FLOAT32, [1.5, -0.25]),
        (TypeCode.FLOAT64, [3.141592653589793, -1e300]),
        (TypeCode.BOOL, [True, False, True]),
    ]

    @pytest.mark.parametrize("order", [LITTLE_ENDIAN, BIG_ENDIAN])
    def test_bulk_write_matches_single_writes(self, order):
        for code, values in self.RUNS:
            bulk = XBSWriter(order)
            bulk.write_uint8(1)  # misalign the stream first
            bulk.write_scalars(code, values)
            single = XBSWriter(order)
            single.write_uint8(1)
            for v in values:
                single.write_scalar(code, v)
            assert bulk.getvalue() == single.getvalue(), code

    @pytest.mark.parametrize("order", [LITTLE_ENDIAN, BIG_ENDIAN])
    def test_bulk_read_matches_single_reads(self, order):
        for code, values in self.RUNS:
            w = XBSWriter(order)
            w.write_uint8(1)
            for v in values:
                w.write_scalar(code, v)
            r = XBSReader(w.getvalue(), order)
            assert r.read_uint8() == 1
            got = r.read_scalars(code, len(values))
            assert list(got) == [v for v in values]
            assert r.at_end()
            if code is TypeCode.BOOL:
                assert all(isinstance(v, bool) for v in got)

    def test_empty_run(self):
        w = XBSWriter()
        w.write_scalars(TypeCode.FLOAT64, [])
        assert w.getvalue() == b""
        assert XBSReader(b"").read_scalars(TypeCode.FLOAT64, 0) == ()

    def test_range_checked_like_single_writes(self):
        w = XBSWriter()
        with pytest.raises(XBSEncodeError):
            w.write_scalars(TypeCode.INT8, [1, 300])

    def test_string_runs_rejected(self):
        with pytest.raises(XBSEncodeError):
            XBSWriter().write_scalars(TypeCode.STRING, ["a"])
        with pytest.raises(XBSDecodeError):
            XBSReader(b"\x00\x00").read_scalars(TypeCode.STRING, 1)

    def test_negative_count_rejected(self):
        with pytest.raises(XBSDecodeError):
            XBSReader(b"\x00\x00").read_scalars(TypeCode.UINT8, -1)

    def test_truncated_run_rejected(self):
        w = XBSWriter()
        w.write_scalars(TypeCode.INT32, [1, 2])
        with pytest.raises(XBSDecodeError):
            XBSReader(w.getvalue()).read_scalars(TypeCode.INT32, 3)
