"""Unit tests for the VLS variable-length integer encoding."""

import pytest

from repro.xbs import XBSDecodeError, XBSEncodeError, decode_vls, encode_vls, vls_length


def test_zero_is_one_byte():
    assert encode_vls(0) == b"\x00"
    assert decode_vls(b"\x00") == (0, 1)


def test_single_byte_boundary():
    assert encode_vls(127) == b"\x7f"
    assert decode_vls(b"\x7f") == (127, 1)


def test_two_byte_boundary():
    assert encode_vls(128) == b"\x80\x01"
    assert decode_vls(b"\x80\x01") == (128, 2)


@pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 16383, 16384, 2**32, 2**63, 2**64 - 1])
def test_roundtrip_known_values(value):
    encoded = encode_vls(value)
    assert len(encoded) == vls_length(value)
    decoded, offset = decode_vls(encoded)
    assert decoded == value
    assert offset == len(encoded)


def test_decode_with_offset():
    data = b"\xff\xff" + encode_vls(300) + b"tail"
    value, offset = decode_vls(data, 2)
    assert value == 300
    assert data[offset:] == b"tail"


def test_negative_rejected():
    with pytest.raises(XBSEncodeError):
        encode_vls(-1)
    with pytest.raises(XBSEncodeError):
        vls_length(-1)


def test_truncated_rejected():
    with pytest.raises(XBSDecodeError):
        decode_vls(b"\x80")
    with pytest.raises(XBSDecodeError):
        decode_vls(b"")


def test_overlong_rejected():
    with pytest.raises(XBSDecodeError):
        decode_vls(b"\x80" * 10 + b"\x01")


def test_non_canonical_zero_padding_rejected():
    # 0x80 0x00 would also decode to 0 under a lax decoder.
    with pytest.raises(XBSDecodeError):
        decode_vls(b"\x80\x00")


def test_continuation_bytes_set_correctly():
    encoded = encode_vls(2**40)
    assert all(b & 0x80 for b in encoded[:-1])
    assert not encoded[-1] & 0x80


def test_value_above_uint64_rejected():
    """10 bytes can carry 70 payload bits; anything past 2^64-1 is not a
    size and must be rejected, not wrapped or silently accepted."""
    for value in (2**64, 2**64 + 1, 2**69):
        with pytest.raises(XBSDecodeError, match="64-bit"):
            decode_vls(encode_vls(value))


def test_uint64_max_still_accepted():
    assert decode_vls(encode_vls(2**64 - 1)) == (2**64 - 1, 10)
