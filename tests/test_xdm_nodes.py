"""Unit tests for bXDM nodes, QNames and the atomic type registry."""

import math

import numpy as np
import pytest

from repro.xbs import TypeCode
from repro.xdm import (
    ArrayElement,
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    LeafElement,
    NamespaceNode,
    NodeKind,
    PINode,
    QName,
    TextNode,
    XDMError,
    XDMTypeError,
    atomic_type_for_code,
    atomic_type_for_dtype,
    atomic_type_for_xsd,
    format_lexical,
    parse_lexical,
)


class TestQName:
    def test_equality_ignores_prefix(self):
        a = QName("Body", "urn:soap", "s")
        b = QName("Body", "urn:soap", "env")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_uri(self):
        assert QName("Body", "urn:a") != QName("Body", "urn:b")

    def test_clark_roundtrip(self):
        q = QName("x", "urn:test")
        assert QName.parse(q.clark()) == q
        assert QName.parse("plain") == QName("plain")

    def test_empty_local_rejected(self):
        with pytest.raises(ValueError):
            QName("")

    def test_str_uses_prefix(self):
        assert str(QName("Body", "urn:soap", "s")) == "s:Body"
        assert str(QName("Body", "urn:soap")) == "Body"


class TestAtomicTypes:
    def test_xsd_code_dtype_consistency(self):
        for name in ["byte", "short", "int", "long", "float", "double", "boolean"]:
            t = atomic_type_for_xsd(name)
            assert atomic_type_for_code(t.code) is t
            assert atomic_type_for_dtype(t.dtype) is t

    def test_unknown_xsd_name(self):
        with pytest.raises(XDMTypeError):
            atomic_type_for_xsd("duration")

    def test_aliases(self):
        assert atomic_type_for_xsd("integer").xsd_name == "long"
        assert atomic_type_for_xsd("decimal").xsd_name == "double"

    def test_float_lexical_full_precision(self):
        t = atomic_type_for_xsd("double")
        value = 0.1 + 0.2
        assert parse_lexical(t, format_lexical(t, value)) == value

    def test_float_specials(self):
        t = atomic_type_for_xsd("double")
        assert format_lexical(t, math.inf) == "INF"
        assert format_lexical(t, -math.inf) == "-INF"
        assert format_lexical(t, math.nan) == "NaN"
        assert parse_lexical(t, "INF") == math.inf
        assert parse_lexical(t, "-INF") == -math.inf
        assert math.isnan(parse_lexical(t, "NaN"))

    def test_boolean_lexical(self):
        t = atomic_type_for_xsd("boolean")
        assert format_lexical(t, True) == "true"
        assert parse_lexical(t, "1") is True
        assert parse_lexical(t, "false") is False
        with pytest.raises(XDMTypeError):
            parse_lexical(t, "yes")

    def test_int_range_check(self):
        t = atomic_type_for_xsd("byte")
        with pytest.raises(XDMTypeError):
            parse_lexical(t, "200")
        assert parse_lexical(t, " -128 ") == -128

    def test_bad_lexical(self):
        with pytest.raises(XDMTypeError):
            parse_lexical(atomic_type_for_xsd("int"), "3.5")
        with pytest.raises(XDMTypeError):
            parse_lexical(atomic_type_for_xsd("double"), "abc")


class TestLeafElement:
    def test_type_inference(self):
        assert LeafElement("a", 5).atype.xsd_name == "int"
        assert LeafElement("a", 2**40).atype.xsd_name == "long"
        assert LeafElement("a", 1.5).atype.xsd_name == "double"
        assert LeafElement("a", True).atype.xsd_name == "boolean"
        assert LeafElement("a", "hi").atype.xsd_name == "string"
        assert LeafElement("a", np.float32(1.0)).atype.xsd_name == "float"
        assert LeafElement("a", np.int16(3)).atype.xsd_name == "short"

    def test_explicit_type_coerces(self):
        node = LeafElement("a", 5, "double")
        assert node.value == 5.0
        assert isinstance(node.value, float)

    def test_out_of_range_rejected(self):
        with pytest.raises(XDMTypeError):
            LeafElement("a", 300, "byte")

    def test_no_children(self):
        node = LeafElement("a", 1)
        with pytest.raises(XDMError):
            node.append(TextNode("x"))

    def test_kind(self):
        assert LeafElement("a", 1).kind is NodeKind.LEAF_ELEMENT

    def test_text_content_is_lexical(self):
        assert LeafElement("a", 2.5).text_content() == "2.5"


class TestArrayElement:
    def test_values_packed_contiguous(self):
        node = ArrayElement("a", [1, 2, 3], "int")
        assert node.values.dtype == np.dtype("i4")
        assert node.values.flags.c_contiguous

    def test_dtype_inferred(self):
        node = ArrayElement("a", np.arange(4, dtype="f4"))
        assert node.atype.xsd_name == "float"

    def test_2d_rejected(self):
        with pytest.raises(XDMTypeError):
            ArrayElement("a", np.zeros((2, 3)))

    def test_string_type_rejected(self):
        with pytest.raises(XDMTypeError):
            ArrayElement("a", [1, 2], "string")

    def test_len(self):
        assert len(ArrayElement("a", np.arange(7))) == 7

    def test_no_children(self):
        with pytest.raises(XDMError):
            ArrayElement("a", [1.0]).append(TextNode("x"))

    def test_text_content_space_separated(self):
        assert ArrayElement("a", [1, 2], "int").text_content() == "1 2"


class TestElementNode:
    def test_attribute_lookup_by_local(self):
        e = ElementNode("e")
        e.set_attribute("id", "x1")
        assert e.attribute("id").value == "x1"
        assert e.attribute("missing") is None

    def test_set_attribute_replaces(self):
        e = ElementNode("e")
        e.set_attribute("id", "a")
        e.set_attribute("id", "b")
        assert len(e.attributes) == 1
        assert e.attribute("id").value == "b"

    def test_typed_attribute(self):
        e = ElementNode("e")
        e.set_attribute("n", 5, "int")
        attr = e.attribute("n")
        assert attr.value == 5
        assert attr.atype.code == TypeCode.INT32

    def test_elements_iterator_skips_text(self):
        e = ElementNode("e", children=[TextNode("x"), ElementNode("c"), CommentNode("z")])
        assert [c.name.local for c in e.elements()] == ["c"]

    def test_nested_text_content(self):
        e = ElementNode("e", children=[TextNode("a"), ElementNode("c", children=[TextNode("b")])])
        assert e.text_content() == "ab"

    def test_declare_namespace(self):
        e = ElementNode("e")
        e.declare_namespace("p", "urn:x")
        assert NamespaceNode("p", "urn:x") in e.namespaces


class TestDocumentNode:
    def test_root(self):
        d = DocumentNode([CommentNode("c"), ElementNode("r")])
        assert d.root.name.local == "r"

    def test_missing_root(self):
        with pytest.raises(XDMError):
            DocumentNode([CommentNode("c")]).root


class TestMiscNodes:
    def test_comment_double_dash_rejected(self):
        with pytest.raises(XDMError):
            CommentNode("a--b")

    def test_pi_target_validation(self):
        with pytest.raises(XDMError):
            PINode("xml")
        with pytest.raises(XDMError):
            PINode("t", "a?>b")

    def test_text_requires_str(self):
        with pytest.raises(XDMTypeError):
            TextNode(42)

    def test_attribute_infers_numeric(self):
        a = AttributeNode("n", 1.5)
        assert a.atype.xsd_name == "double"
