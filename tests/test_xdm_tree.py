"""Unit tests for the builder, visitor walker, comparison and path helpers."""

import numpy as np
import pytest

from repro.xdm import (
    ArrayElement,
    LeafElement,
    TreeBuilder,
    Visitor,
    XDMError,
    array,
    canonical_signature,
    children_named,
    comment,
    deep_equal,
    doc,
    element,
    explain_difference,
    find_all,
    find_first,
    leaf,
    select,
    text,
    walk,
)
from repro.xdm.path import select_one
from repro.xdm.visitor import count_nodes, tree_depth


def sample_tree():
    return doc(
        comment("prolog"),
        element(
            "Envelope",
            element(
                "Body",
                leaf("count", 3, "int"),
                array("values", np.arange(4, dtype="f8")),
                element("meta", text("hello"), attributes={"id": "m1"}),
            ),
            namespaces={"s": "urn:soap"},
        ),
    )


class TestBuilder:
    def test_functional_and_imperative_agree(self):
        functional = sample_tree()
        b = TreeBuilder()
        b.comment("prolog")
        with b.element("Envelope", namespaces={"s": "urn:soap"}):
            with b.element("Body"):
                b.leaf("count", 3, "int")
                b.array("values", np.arange(4, dtype="f8"))
                with b.element("meta", attributes={"id": "m1"}):
                    b.text("hello")
        assert deep_equal(functional, b.document)

    def test_unbalanced_detected(self):
        b = TreeBuilder()
        b.start_element("a")
        with pytest.raises(XDMError):
            _ = b.document

    def test_end_without_start(self):
        with pytest.raises(XDMError):
            TreeBuilder().end_element()

    def test_depth_tracking(self):
        b = TreeBuilder()
        assert b.depth == 0
        b.start_element("a")
        b.start_element("b")
        assert b.depth == 2


class TestWalker:
    def test_visit_order(self):
        events = []

        class Recorder(Visitor):
            def enter_document(self, node):
                events.append("enter-doc")

            def leave_document(self, node):
                events.append("leave-doc")

            def enter_element(self, node):
                events.append(f"enter-{node.name.local}")

            def leave_element(self, node):
                events.append(f"leave-{node.name.local}")

            def visit_leaf(self, node):
                events.append(f"leaf-{node.name.local}")

            def visit_array(self, node):
                events.append(f"array-{node.name.local}")

            def visit_text(self, node):
                events.append("text")

            def visit_comment(self, node):
                events.append("comment")

        walk(sample_tree(), Recorder())
        assert events == [
            "enter-doc",
            "comment",
            "enter-Envelope",
            "enter-Body",
            "leaf-count",
            "array-values",
            "enter-meta",
            "text",
            "leave-meta",
            "leave-Body",
            "leave-Envelope",
            "leave-doc",
        ]

    def test_deep_tree_no_recursion_error(self):
        b = TreeBuilder()
        for _ in range(5000):
            b.start_element("n")
        for _ in range(5000):
            b.end_element()
        walk(b.document, Visitor())  # must not raise RecursionError
        assert tree_depth(b.document) == 5000

    def test_count_nodes(self):
        # doc + comment + Envelope + Body + leaf + array + meta + text = 8
        assert count_nodes(sample_tree()) == 8


class TestCompare:
    def test_equal_trees(self):
        assert deep_equal(sample_tree(), sample_tree())

    def test_attribute_order_insignificant(self):
        a = element("e", attributes={"x": "1", "y": "2"})
        b = element("e")
        b.set_attribute("y", "2")
        b.set_attribute("x", "1")
        assert deep_equal(a, b)

    def test_leaf_value_difference_reported_with_path(self):
        a = sample_tree()
        b = sample_tree()
        select_one(b, "Envelope/Body/count").value = 4
        diff = explain_difference(a, b)
        assert diff is not None and "count" in diff

    def test_array_difference_reports_index(self):
        a = element("e", array("v", np.arange(10.0)))
        b = element("e", array("v", np.arange(10.0)))
        b.children[0].values[7] = 99.0
        diff = explain_difference(a, b)
        assert "index 7" in diff

    def test_nan_equal(self):
        a = element("e", leaf("x", float("nan")), array("v", np.array([np.nan])))
        b = element("e", leaf("x", float("nan")), array("v", np.array([np.nan])))
        assert deep_equal(a, b)

    def test_kind_mismatch(self):
        a = leaf("x", 1)
        b = element("x", text("1"))
        assert not deep_equal(a, b)

    def test_signature_matches_equality(self):
        assert canonical_signature(sample_tree()) == canonical_signature(sample_tree())
        other = sample_tree()
        select_one(other, "Envelope/Body/count").value = 9
        assert canonical_signature(other) != canonical_signature(sample_tree())

    def test_namespace_declarations_compared_as_set(self):
        a = element("e", namespaces={"p": "urn:1", "q": "urn:2"})
        b = element("e", namespaces={"q": "urn:2", "p": "urn:1"})
        assert deep_equal(a, b)


class TestPath:
    def test_select_path(self):
        tree = sample_tree()
        found = select(tree, "Envelope/Body/values")
        assert len(found) == 1
        assert isinstance(found[0], ArrayElement)

    def test_select_wildcard(self):
        assert len(select(sample_tree(), "Envelope/Body/*")) == 3

    def test_select_clark_step(self):
        tree = doc(element("{urn:a}root", element("{urn:a}child")))
        assert len(select(tree, "{urn:a}root/{urn:a}child")) == 1
        assert select(tree, "{urn:b}root/{urn:a}child") == []

    def test_select_one_requires_unique(self):
        with pytest.raises(LookupError):
            select_one(sample_tree(), "Envelope/Body/*")

    def test_find_first_descendant(self):
        found = find_first(sample_tree(), "count")
        assert isinstance(found, LeafElement)
        assert find_first(sample_tree(), "absent") is None

    def test_find_all(self):
        tree = element("r", element("a"), element("b", element("a")))
        assert len(find_all(tree, "a")) == 2

    def test_children_named(self):
        tree = sample_tree().root
        assert [e.name.local for e in children_named(tree, "Body")] == ["Body"]
