"""Tests for the XPath-lite evaluator — the same query over either encoding."""

import numpy as np
import pytest

from repro.bxsa import decode, encode
from repro.xdm import array, doc, element, leaf
from repro.xdm.xpath import XPathError, evaluate, evaluate_one, parse_path
from repro.xmlcodec import parse_document, serialize


@pytest.fixture()
def tree():
    return doc(
        element(
            "catalog",
            element(
                "book",
                leaf("title", "Generic Programming", "string"),
                leaf("year", 1998, "int"),
                attributes={"id": "b1", "lang": "en"},
            ),
            element(
                "book",
                leaf("title", "Modern C++ Design", "string"),
                leaf("year", 2001, "int"),
                attributes={"id": "b2", "lang": "en"},
            ),
            element(
                "journal",
                element("book", leaf("title", "Nested", "string")),
                attributes={"id": "j1"},
            ),
            array("ratings", np.array([5, 4, 5], dtype="i4")),
        )
    )


class TestParsing:
    def test_rejects_empty(self):
        for bad in ("", "/", "//"):
            with pytest.raises(XPathError):
                parse_path(bad)

    def test_rejects_bad_predicate(self):
        with pytest.raises(XPathError):
            parse_path("a[position() > 2]")

    def test_rejects_zero_index(self):
        with pytest.raises(XPathError):
            parse_path("a[0]")

    def test_rejects_garbage(self):
        with pytest.raises(XPathError):
            parse_path("a|b")

    def test_steps_and_axes(self):
        steps = parse_path("//a/b//c")
        assert [s.descendant for s in steps] == [True, False, True]


class TestEvaluation:
    def test_child_path(self, tree):
        titles = evaluate(tree, "catalog/book/title")
        assert [t.value for t in titles] == ["Generic Programming", "Modern C++ Design"]

    def test_leading_slash_equivalent(self, tree):
        assert evaluate(tree, "/catalog/book") == evaluate(tree, "catalog/book")

    def test_wildcard(self, tree):
        assert len(evaluate(tree, "catalog/*")) == 4

    def test_descendant_axis(self, tree):
        books = evaluate(tree, "//book")
        assert len(books) == 3  # includes the nested one

    def test_descendant_then_child(self, tree):
        titles = evaluate(tree, "//book/title")
        assert len(titles) == 3

    def test_positional_predicate(self, tree):
        second = evaluate_one(tree, "catalog/book[2]")
        assert second.attribute("id").value == "b2"

    def test_attribute_presence(self, tree):
        assert len(evaluate(tree, "catalog/*[@lang]")) == 2

    def test_attribute_equality(self, tree):
        found = evaluate_one(tree, '//book[@id="b2"]')
        assert found.attribute("id").value == "b2"

    def test_child_text_equality(self, tree):
        found = evaluate_one(tree, '//book[title="Nested"]')
        assert found.attribute("id") is None  # the nested one has no id

    def test_chained_predicates(self, tree):
        found = evaluate(tree, 'catalog/book[@lang="en"][1]')
        assert len(found) == 1
        assert found[0].attribute("id").value == "b1"

    def test_no_match_is_empty(self, tree):
        assert evaluate(tree, "//nothing") == []

    def test_evaluate_one_requires_unique(self, tree):
        with pytest.raises(LookupError):
            evaluate_one(tree, "//book")

    def test_typed_attribute_compared_lexically(self):
        node = element("r", element("e", attributes={"n": 5}))
        assert len(evaluate(node, 'e[@n="5"]')) == 1

    def test_clark_nametest(self):
        from repro.xdm import QName

        tree2 = doc(element(QName("root", "urn:a"), element(QName("c", "urn:a"))))
        assert len(evaluate(tree2, "{urn:a}root/{urn:a}c")) == 1
        assert evaluate(tree2, "{urn:b}root/{urn:a}c") == []


class TestSameQueryBothEncodings:
    """§5.1: XDM-based processing runs over binary XML unchanged."""

    QUERY = '//book[@lang="en"]/title'

    def test_results_identical_after_either_wire_format(self, tree):
        via_xml = parse_document(serialize(tree))
        via_bxsa = decode(encode(tree))
        for rebuilt in (via_xml, via_bxsa):
            titles = [t.value for t in evaluate(rebuilt, self.QUERY)]
            assert titles == ["Generic Programming", "Modern C++ Design"]

    def test_array_elements_are_reachable(self, tree):
        rebuilt = decode(encode(tree))
        ratings = evaluate_one(rebuilt, "catalog/ratings")
        np.testing.assert_array_equal(np.asarray(ratings.values), [5, 4, 5])
