"""Unit tests for the from-scratch XML parser."""

import numpy as np
import pytest

from repro.xdm import ArrayElement, CommentNode, ElementNode, LeafElement, PINode
from repro.xmlcodec import XMLParseError, parse_document, parse_fragment


class TestBasics:
    def test_minimal_document(self):
        doc = parse_document("<r/>")
        assert doc.root.name.local == "r"
        assert doc.root.children == []

    def test_xml_declaration(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?><r/>')
        assert doc.root.name.local == "r"

    def test_unsupported_encoding(self):
        with pytest.raises(XMLParseError):
            parse_document('<?xml version="1.0" encoding="UTF-16"?><r/>')

    def test_utf8_bytes_with_bom(self):
        doc = parse_document(b"\xef\xbb\xbf<r>caf\xc3\xa9</r>")
        assert doc.root.children[0].text == "café"

    def test_invalid_utf8_bytes(self):
        with pytest.raises(XMLParseError):
            parse_document(b"<r>\xff</r>")

    def test_nested_elements_and_text(self):
        doc = parse_document("<a><b>one</b><c>two</c></a>")
        kids = list(doc.root.elements())
        assert [k.name.local for k in kids] == ["b", "c"]
        assert kids[0].children[0].text == "one"

    def test_self_closing_with_attrs(self):
        doc = parse_document('<a x="1" y="two"/>')
        assert doc.root.attribute("x").value == "1"
        assert doc.root.attribute("y").value == "two"

    def test_comment_and_pi_in_prolog_and_content(self):
        doc = parse_document("<!--c--><?p data?><r><!--in--><?q?></r>")
        assert isinstance(doc.children[0], CommentNode)
        assert isinstance(doc.children[1], PINode)
        assert isinstance(doc.root.children[0], CommentNode)
        assert isinstance(doc.root.children[1], PINode)
        assert doc.root.children[1].data == ""

    def test_cdata(self):
        doc = parse_document("<r><![CDATA[a<b&c]]></r>")
        assert doc.root.children[0].text == "a<b&c"

    def test_cdata_merges_with_text(self):
        doc = parse_document("<r>x<![CDATA[y]]>z</r>")
        assert len(doc.root.children) == 1
        assert doc.root.children[0].text == "xyz"

    def test_entities_in_text_and_attr(self):
        doc = parse_document('<r a="&lt;&amp;&quot;">&gt;&#65;&#x42;</r>')
        assert doc.root.attribute("a").value == '<&"'
        assert doc.root.children[0].text == ">AB"

    def test_doctype_skipped(self):
        doc = parse_document('<!DOCTYPE r SYSTEM "r.dtd"><r/>')
        assert doc.root.name.local == "r"

    def test_doctype_internal_subset_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document('<!DOCTYPE r [<!ENTITY e "x">]><r/>')


class TestWellFormedness:
    @pytest.mark.parametrize(
        "bad",
        [
            "<r>",  # unterminated
            "<r></s>",  # mismatched end tag
            "<r/><r/>",  # two roots
            "text<r/>",  # text before root
            "<r/>text",  # text after root
            "<r a='1' a='2'/>",  # duplicate attribute
            "<r a=1/>",  # unquoted attribute
            "<r a='x'b='y'/>",  # missing whitespace between attributes
            "<r>&undefined;</r>",  # unknown entity
            "<r>&#xD800;</r>",  # surrogate char ref
            "<r>&#2;</r>",  # control char ref
            "<r><b></r></b>",  # improper nesting
            "<r>]]></r>",  # bare CDATA end marker
            "<r a='<'/>",  # '<' in attribute value
            "<1r/>",  # name starts with digit
            "</r>",  # end tag with no start
            "",  # empty document
            "   ",  # whitespace only
            "<!-- a -- b --><r/>",  # double dash in comment
            "<r><![CDATA[x</r>",  # unterminated CDATA
            "<r xmlns:xmlns='urn:x'/>",  # reserved prefix declared
            "<p:r/>",  # undeclared prefix
            "<r p:a='1'/>",  # undeclared attribute prefix
            "<r xmlns:p=''/>",  # empty URI for prefix
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(XMLParseError):
            parse_document(bad)

    def test_duplicate_expanded_attribute(self):
        text = '<r xmlns:a="urn:x" xmlns:b="urn:x" a:id="1" b:id="2"/>'
        with pytest.raises(XMLParseError):
            parse_document(text)

    def test_error_carries_offset(self):
        try:
            parse_document("<r>&nope;</r>")
        except XMLParseError as exc:
            assert exc.offset is not None
        else:  # pragma: no cover
            pytest.fail("expected XMLParseError")


class TestNamespaces:
    def test_prefix_resolution(self):
        doc = parse_document('<p:r xmlns:p="urn:x"><p:c/></p:r>')
        assert doc.root.name.uri == "urn:x"
        assert next(doc.root.elements()).name.uri == "urn:x"

    def test_default_namespace(self):
        doc = parse_document('<r xmlns="urn:d"><c/></r>')
        assert doc.root.name.uri == "urn:d"
        assert next(doc.root.elements()).name.uri == "urn:d"

    def test_default_namespace_not_for_attributes(self):
        doc = parse_document('<r xmlns="urn:d" a="1"/>')
        assert doc.root.attributes[0].name.uri == ""

    def test_default_namespace_undeclared(self):
        doc = parse_document('<r xmlns="urn:d"><c xmlns=""/></r>')
        assert next(doc.root.elements()).name.uri == ""

    def test_scope_shadowing(self):
        doc = parse_document('<r xmlns:p="urn:1"><c xmlns:p="urn:2"><p:x/></c><p:y/></r>')
        c = next(doc.root.elements())
        assert next(c.elements()).name.uri == "urn:2"
        y = list(doc.root.elements())[1]
        assert y.name.uri == "urn:1"

    def test_declarations_recorded_on_node(self):
        doc = parse_document('<r xmlns:p="urn:1" xmlns="urn:d"/>')
        decls = {(n.prefix, n.uri) for n in doc.root.namespaces}
        assert decls == {("p", "urn:1"), ("", "urn:d")}

    def test_prefix_hint_preserved(self):
        doc = parse_document('<p:r xmlns:p="urn:x"/>')
        assert doc.root.name.prefix == "p"


class TestTypedParsing:
    XSI = 'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
    XSD = 'xmlns:xsd="http://www.w3.org/2001/XMLSchema"'
    BX = 'xmlns:bx="urn:repro:bxdm"'

    def test_leaf_int(self):
        doc = parse_document(f'<n {self.XSI} {self.XSD} xsi:type="xsd:int">42</n>')
        node = doc.root
        assert isinstance(node, LeafElement)
        assert node.value == 42
        assert node.atype.xsd_name == "int"
        assert node.attribute("type") is None  # xsi:type consumed

    def test_leaf_double_full_precision(self):
        value = 0.1 + 0.2
        doc = parse_document(f'<n {self.XSI} {self.XSD} xsi:type="xsd:double">{value!r}</n>')
        assert doc.root.value == value

    def test_leaf_string(self):
        doc = parse_document(f'<n {self.XSI} {self.XSD} xsi:type="xsd:string">hi</n>')
        assert isinstance(doc.root, LeafElement)
        assert doc.root.value == "hi"

    def test_leaf_empty_string(self):
        doc = parse_document(f'<n {self.XSI} {self.XSD} xsi:type="xsd:string"/>')
        assert doc.root.value == ""

    def test_unknown_xsd_type_stays_untyped(self):
        doc = parse_document(f'<n {self.XSI} {self.XSD} xsi:type="xsd:duration">P1D</n>')
        assert isinstance(doc.root, ElementNode)
        assert not isinstance(doc.root, LeafElement)
        assert doc.root.attribute("type") is not None

    def test_foreign_xsi_type_stays_untyped(self):
        doc = parse_document(
            f'<n {self.XSI} xmlns:o="urn:other" xsi:type="o:Thing">x</n>'
        )
        assert not isinstance(doc.root, LeafElement)

    def test_typed_parsing_disabled(self):
        doc = parse_document(
            f'<n {self.XSI} {self.XSD} xsi:type="xsd:int">42</n>', typed=False
        )
        assert not isinstance(doc.root, LeafElement)

    def test_bad_lexical_value_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document(f'<n {self.XSI} {self.XSD} xsi:type="xsd:int">4.5</n>')

    def test_leaf_with_element_children_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document(f'<n {self.XSI} {self.XSD} xsi:type="xsd:int"><c/>4</n>')

    def test_array(self):
        text = (
            f'<v {self.XSI} {self.XSD} {self.BX} xsi:type="bx:Array" '
            f'bx:itemType="xsd:double"><d>1.5</d><d>2.5</d></v>'
        )
        doc = parse_document(text)
        node = doc.root
        assert isinstance(node, ArrayElement)
        np.testing.assert_array_equal(node.values, [1.5, 2.5])
        assert node.item_name == "d"
        assert node.atype.xsd_name == "double"

    def test_array_whitespace_between_items_ok(self):
        text = (
            f'<v {self.XSI} {self.XSD} {self.BX} xsi:type="bx:Array" '
            f'bx:itemType="xsd:int">\n  <i>1</i>\n  <i>2</i>\n</v>'
        )
        node = parse_document(text).root
        np.testing.assert_array_equal(node.values, [1, 2])

    def test_empty_array(self):
        text = (
            f'<v {self.XSI} {self.XSD} {self.BX} xsi:type="bx:Array" '
            f'bx:itemType="xsd:float"/>'
        )
        node = parse_document(text).root
        assert isinstance(node, ArrayElement)
        assert node.values.size == 0
        assert node.atype.xsd_name == "float"

    def test_array_missing_item_type_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document(f'<v {self.XSI} {self.BX} xsi:type="bx:Array"><i>1</i></v>')

    def test_array_mixed_item_names_rejected(self):
        text = (
            f'<v {self.XSI} {self.XSD} {self.BX} xsi:type="bx:Array" '
            f'bx:itemType="xsd:int"><a>1</a><b>2</b></v>'
        )
        with pytest.raises(XMLParseError):
            parse_document(text)

    def test_array_stray_text_rejected(self):
        text = (
            f'<v {self.XSI} {self.XSD} {self.BX} xsi:type="bx:Array" '
            f'bx:itemType="xsd:int"><i>1</i>junk</v>'
        )
        with pytest.raises(XMLParseError):
            parse_document(text)


class TestFragment:
    def test_parse_fragment(self):
        node = parse_fragment("<a><b/></a>")
        assert isinstance(node, ElementNode)

    def test_fragment_trailing_garbage(self):
        with pytest.raises(XMLParseError):
            parse_fragment("<a/><b/>")

    def test_fragment_must_be_element(self):
        with pytest.raises(XMLParseError):
            parse_fragment("<!--only a comment-->")
