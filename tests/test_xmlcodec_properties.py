"""Property-based round-trip tests for the textual XML codec."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.xdm import deep_equal, explain_difference
from repro.xmlcodec import parse_document, serialize

from tests.strategies import documents, elements

pytestmark = pytest.mark.slow

_settings = settings(
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


@given(documents())
@_settings
def test_document_roundtrip(tree):
    xml = serialize(tree)
    parsed = parse_document(xml)
    diff = explain_difference(tree, parsed, ignore_ns_decls=True)
    assert diff is None, f"{diff}\nXML: {xml[:500]}"


@given(elements())
@_settings
def test_element_roundtrip_via_fragment(node):
    from repro.xmlcodec import parse_fragment

    xml = serialize(node)
    parsed = parse_fragment(xml)
    assert deep_equal(node, parsed, ignore_ns_decls=True)


@given(documents())
@_settings
def test_serialization_deterministic(tree):
    assert serialize(tree) == serialize(tree)


@given(documents())
@_settings
def test_double_roundtrip_fixpoint(tree):
    """serialize∘parse is a fixpoint after one application."""
    once = parse_document(serialize(tree))
    xml1 = serialize(once)
    twice = parse_document(xml1)
    assert serialize(twice) == xml1
