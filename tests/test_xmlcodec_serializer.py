"""Unit tests for the XML serializer and serializer↔parser round-trips."""

import numpy as np
import pytest

from repro.xdm import (
    LeafElement,
    QName,
    array,
    comment,
    doc,
    element,
    explain_difference,
    leaf,
    pi,
    text,
)
from repro.xmlcodec import (
    XMLSerializeError,
    escape_attribute,
    escape_text,
    parse_document,
    serialize,
    unescape,
)
from repro.xmlcodec.serializer import XMLSerializer


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b&c>d") == "a&lt;b&amp;c&gt;d"
        assert escape_text("plain") == "plain"

    def test_attr_escapes(self):
        assert escape_attribute('a"b\nc') == "a&quot;b&#10;c"

    def test_unescape_inverse(self):
        for s in ["a<b&c>d", 'q"uote', "mixed &<>'\" text"]:
            assert unescape(escape_text(s)) == s
            assert unescape(escape_attribute(s)) == s

    def test_text_carriage_return_escaped(self):
        """A bare \\r in character data is normalized to \\n by conforming
        parsers; it must ship as a character reference to round-trip."""
        assert escape_text("a\rb") == "a&#13;b"
        assert escape_text("a\r\nb") == "a&#13;\nb"
        for s in ["\r", "line1\rline2", "crlf\r\nend", "&\r<"]:
            assert unescape(escape_text(s)) == s


class TestSerializeBasics:
    def test_empty_element_self_closes(self):
        assert serialize(element("r")) == "<r/>"

    def test_text_child(self):
        assert serialize(element("r", text("hi"))) == "<r>hi</r>"

    def test_attributes(self):
        out = serialize(element("r", attributes={"a": "1"}))
        assert out == '<r a="1"/>'

    def test_comment_and_pi(self):
        out = serialize(doc(comment("c"), element("r", pi("t", "d"))))
        assert out == "<!--c--><r><?t d?></r>"

    def test_whitespace_only_pi_data_normalized(self):
        """Leading PI-data whitespace is the XML target/data separator —
        it cannot round-trip, so the model strips it at construction."""
        node = pi("t", "  ")
        assert node.data == ""
        assert serialize(element("r", node)) == "<r><?t?></r>"
        assert pi("t", "  d ").data == "d "

    def test_xml_declaration(self):
        out = serialize(doc(element("r")), xml_declaration=True)
        assert out.startswith('<?xml version="1.0" encoding="UTF-8"?>')

    def test_text_is_escaped(self):
        assert serialize(element("r", text("a<b"))) == "<r>a&lt;b</r>"

    def test_leaf_untyped_mode(self):
        out = serialize(leaf("n", 42, "int"), emit_types=False)
        assert out == "<n>42</n>"

    def test_leaf_typed_mode(self):
        out = serialize(leaf("n", 42, "int"))
        assert 'xsi:type="xsd:int"' in out
        assert ">42</n>" in out

    def test_array_untyped_short_tags(self):
        node = array("v", np.array([1, 2], dtype="i4"), item_name="i")
        out = serialize(node, emit_types=False)
        assert out == "<v><i>1</i><i>2</i></v>"

    def test_array_typed(self):
        node = array("v", np.array([1.5], dtype="f8"))
        out = serialize(node)
        assert 'xsi:type="bx:Array"' in out
        assert 'bx:itemType="xsd:double"' in out
        assert "<item>1.5</item>" in out

    def test_empty_array_self_closes(self):
        node = array("v", np.array([], dtype="f8"))
        out = serialize(node, emit_types=False)
        assert out == "<v/>"

    def test_boolean_array(self):
        node = array("v", np.array([True, False]))
        out = serialize(node, emit_types=False)
        assert out == "<v><item>true</item><item>false</item></v>"


class TestNamespaceSerialization:
    def test_explicit_declaration_used(self):
        node = element(QName("r", "urn:x", "p"), namespaces={"p": "urn:x"})
        assert serialize(node) == '<p:r xmlns:p="urn:x"/>'

    def test_auto_declaration(self):
        node = element(QName("r", "urn:x"))
        out = serialize(node)
        assert 'xmlns:ns1="urn:x"' in out
        assert out.startswith("<ns1:r")

    def test_prefix_hint_honoured(self):
        node = element(QName("r", "urn:x", "soap"))
        assert serialize(node) == '<soap:r xmlns:soap="urn:x"/>'

    def test_default_namespace(self):
        node = element(QName("r", "urn:d"), namespaces={"": "urn:d"})
        assert serialize(node) == '<r xmlns="urn:d"/>'

    def test_child_reuses_parent_declaration(self):
        inner = element(QName("c", "urn:x", "p"))
        node = element(QName("r", "urn:x", "p"), inner, namespaces={"p": "urn:x"})
        assert serialize(node) == '<p:r xmlns:p="urn:x"><p:c/></p:r>'

    def test_no_namespace_under_default_gets_undeclared(self):
        inner = element("c")
        node = element(QName("r", "urn:d"), inner, namespaces={"": "urn:d"})
        out = serialize(node)
        assert '<c xmlns=""/>' in out

    def test_qualified_attribute(self):
        node = element("r", attributes={"{urn:a}id": "7"})
        out = serialize(node)
        assert 'ns1:id="7"' in out
        assert 'xmlns:ns1="urn:a"' in out

    def test_duplicate_explicit_prefix_rejected(self):
        node = element("r")
        node.declare_namespace("p", "urn:1")
        node.declare_namespace("p", "urn:2")
        with pytest.raises(XMLSerializeError):
            serialize(node)

    def test_shadowed_prefix_close_tag_consistent(self):
        inner = element(QName("c", "urn:2", "p"), text("x"), namespaces={"p": "urn:2"})
        node = element(QName("r", "urn:1", "p"), inner, namespaces={"p": "urn:1"})
        out = serialize(node)
        assert out == '<p:r xmlns:p="urn:1"><p:c xmlns:p="urn:2">x</p:c></p:r>'


def roundtrip(node, **kwargs):
    xml = serialize(doc(node) if not hasattr(node, "root") else node, **kwargs)
    return parse_document(xml), xml


class TestRoundTrips:
    def assert_rt(self, node):
        parsed, xml = roundtrip(node)
        diff = explain_difference(doc(node), parsed, ignore_ns_decls=True)
        assert diff is None, f"{diff}\nXML: {xml}"

    def test_plain_tree(self):
        self.assert_rt(
            element(
                "r",
                element("a", text("one"), attributes={"k": "v"}),
                comment("note"),
                element("b"),
            )
        )

    def test_typed_leaves(self):
        self.assert_rt(
            element(
                "r",
                leaf("i", -5, "int"),
                leaf("d", 0.1 + 0.2, "double"),
                leaf("f", 1.5, "float"),
                leaf("b", True, "boolean"),
                leaf("s", "hello <world>", "string"),
                leaf("l", 2**60, "long"),
            )
        )

    def test_typed_arrays(self):
        self.assert_rt(
            element(
                "r",
                array("d", np.linspace(0, 1, 7)),
                array("i", np.arange(5, dtype="i4"), item_name="n"),
                array("u", np.array([0, 255], dtype="u1")),
            )
        )

    def test_float_specials(self):
        self.assert_rt(
            element(
                "r",
                leaf("nan", float("nan"), "double"),
                leaf("inf", float("inf"), "double"),
                array("mixed", np.array([np.nan, np.inf, -np.inf, 0.0])),
            )
        )

    def test_namespaced_tree(self):
        env = QName("Envelope", "urn:soap", "s")
        body = QName("Body", "urn:soap", "s")
        self.assert_rt(
            element(env, element(body, leaf("x", 1, "int")), namespaces={"s": "urn:soap"})
        )

    def test_custom_item_name_survives(self):
        node = array("v", np.arange(3, dtype="f8"), item_name="val")
        parsed, _ = roundtrip(node)
        assert parsed.root.item_name == "val"
        again = serialize(parsed.root, emit_types=False)
        assert "<val>" in again

    def test_whitespace_text_preserved_inside_elements(self):
        node = element("r", text("  keep  "))
        parsed, _ = roundtrip(node)
        assert parsed.root.children[0].text == "  keep  "

    def test_unicode_content(self):
        self.assert_rt(element("r", text("héllo ☃ δοκιμή"), attributes={"k": "ü"}))

    def test_untyped_roundtrip_loses_types_predictably(self):
        node = element("r", leaf("i", 5, "int"))
        xml = serialize(node, emit_types=False)
        parsed = parse_document(xml)
        child = next(parsed.root.elements())
        assert not isinstance(child, LeafElement)
        assert child.text_content() == "5"


class TestSerializerReuse:
    def test_run_resets_state(self):
        ser = XMLSerializer()
        a = ser.run(element(QName("r", "urn:x")))
        b = ser.run(element(QName("r", "urn:x")))
        assert a == b

    def test_run_bytes(self):
        assert XMLSerializer().run_bytes(element("r")) == b"<r/>"
