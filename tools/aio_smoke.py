#!/usr/bin/env python
"""Event-driven serving smoke test for the verify flow.

Stands up the full aio stack — :class:`AsyncHttpServer` over a real
loopback :class:`TcpListener`, backed by a two-worker
:class:`WorkerPool` — and exercises the paths the selector loop owns:

* keep-alive request sequencing on one connection (admin GET, then a
  pooled POST, then another admin GET — all three over the same socket);
* the ``/metrics``·``/healthz`` admin surface answering inline even
  though a pool is attached;
* the connection driver holding 64 concurrent keep-alive connections
  with exact accounting and zero failures;
* graceful drain: ``stop()`` returns with no connection left open and a
  restart attempt raising (one-shot lifecycle).

Seconds, not minutes: this is a wiring check, not a benchmark.  Exit 0
on success, 1 with a diagnostic on the first broken invariant.
"""

import socket
import sys

sys.path.insert(0, "src")

from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.serve.pool import WorkerPool  # noqa: E402
from repro.transport.aio import AsyncHttpServer, drive_connections  # noqa: E402
from repro.transport.http.messages import HttpRequest, HttpResponse  # noqa: E402
from repro.transport.sockets import TcpListener  # noqa: E402


def fail(message: str) -> None:
    print(f"aio_smoke: FAIL — {message}")
    sys.exit(1)


def recv_response(sock: socket.socket) -> bytes:
    """One complete response off a blocking socket (Content-Length framed)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


def main() -> None:
    listener = TcpListener(backlog=256)
    address = listener.address
    metrics = MetricsRegistry()
    pool = WorkerPool(workers=2, queue_depth=32, metrics=metrics).start()

    def pool_handler(request: HttpRequest, _state, _enqueued_at) -> HttpResponse:
        return HttpResponse(200, body=b"pooled:" + request.body)

    server = AsyncHttpServer(
        listener,
        lambda request: HttpResponse(200, body=b"inline"),
        name="aio-smoke",
        metrics=metrics,
        pool=pool,
        pool_handler=pool_handler,
        max_connections=256,
    ).start()

    try:
        # keep-alive sequencing: admin, pooled work, admin — one socket
        sock = socket.create_connection(address, timeout=5.0)
        sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        if not recv_response(sock).startswith(b"HTTP/1.1 200"):
            fail("/healthz did not answer 200 on a keep-alive connection")
        sock.sendall(HttpRequest("POST", "/work", body=b"ping").to_bytes())
        pooled = recv_response(sock)
        if b"pooled:ping" not in pooled:
            fail(f"pooled POST did not round-trip through the worker pool: {pooled[:80]!r}")
        sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        exposition = recv_response(sock)
        if b"http_requests_total" not in exposition:
            fail("/metrics is missing the http_requests_total family")
        sock.close()

        # 64 concurrent keep-alive connections, exact accounting
        request_bytes = HttpRequest("POST", "/work", body=b"x" * 64).to_bytes()
        result = drive_connections(
            address, request_bytes, connections=64, requests_per_connection=3
        )
        if result.established != 64:
            fail(f"only {result.established}/64 connections established")
        if result.failed or result.completed + result.shed != result.offered:
            fail(f"accounting broken: {result.summary()}")
    finally:
        server.stop()
        pool.stop()

    if server.open_connections:
        fail(f"{server.open_connections} connections survived stop()")
    try:
        server.start()
    except RuntimeError:
        pass
    else:
        fail("a stopped server restarted instead of raising")

    print(
        "aio_smoke: PASS — keep-alive sequencing, admin surface, "
        f"64-connection drive ({result.completed} completed, "
        f"{result.shed} shed), drain and one-shot lifecycle all hold"
    )


if __name__ == "__main__":
    main()
