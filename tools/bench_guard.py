#!/usr/bin/env python
"""Regression guard over the pinned hot-path benchmark ratios.

Compares the current ``benchmarks/results/hotpath.json`` (written by
``benchmarks/bench_hotpath.py``) against the previous accepted run stored in
``benchmarks/results/hotpath_baseline.json``.  A pinned speedup ratio that
fell more than 25% below its baseline fails the guard — the hot-path work
this repo carries (compiled encode and decode plans, struct caching,
buffer pooling) must not silently rot.  Usage::

    python tools/bench_guard.py            # compare, roll baseline on pass
    python tools/bench_guard.py --check    # compare only, never write
    python tools/bench_guard.py --reset    # accept current run as baseline

Exit status 0 = within bounds (or first run, which seeds the baseline),
1 = regression or missing current results, matching ``tools/lint.py`` so
the verify flow can chain the steps.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "results"
CURRENT = RESULTS_DIR / "hotpath.json"
BASELINE = RESULTS_DIR / "hotpath_baseline.json"
OBS_RESULTS = RESULTS_DIR / "obs.json"
SERVE_RESULTS = RESULTS_DIR / "serve.json"
STREAM_RESULTS = RESULTS_DIR / "stream.json"
FED_RESULTS = RESULTS_DIR / "fed.json"

#: A pinned ratio may degrade to this fraction of its baseline before the
#: guard fails (25% regression budget — generous enough for machine noise,
#: tight enough to catch a lost optimization).
ALLOWED_FRACTION = 0.75

#: Absolute ceilings for the telemetry overhead pins that
#: ``benchmarks/bench_obs.py`` writes to ``obs.json``.  These do not use
#: a rolling baseline: they are loose enough that only a complexity
#: regression (per-call allocation, lock contention, accidental O(n))
#: would blow them, so a fixed ceiling is the right shape.
OBS_CEILINGS = {
    "labelled_vs_unlabelled_ratio": 10.0,
    "sampler_decide_us": 10.0,
    "disabled_counter_site_us": 5.0,
    # carrying trace context across the wire (header + SOAP block,
    # inject + parse) may add at most 10% to a traced SOAP echo exchange
    "propagation_overhead_ratio": 1.10,
}

#: Fixed ceiling for the warm per-message decode that
#: ``benchmarks/bench_hotpath.py`` writes under ``measured`` in
#: ``hotpath.json``: the compiled decode-plan replay at the smallest
#: Figure 5 size.  Loose enough for machine noise, tight enough that only
#: a complexity regression (plan-cache miss storm, per-message allocation,
#: lost zero-copy path) would blow it.  Keep in sync with
#: ``WARM_DECODE_US_CEILING`` at the top of that benchmark.
HOTPATH_CEILINGS = {
    "warm_decode_us": 60.0,
}

#: Fixed bounds for the serving-runtime pins that
#: ``benchmarks/bench_serve.py`` writes to ``serve.json`` — ceilings on
#: the admission-control overheads, a floor under the full-stack goodput.
#: Keep in sync with the constants at the top of that module.
SERVE_CEILINGS = {
    "shed_decision_us": 50.0,
    "pool_roundtrip_ms": 10.0,
}
SERVE_FLOORS = {
    "serve_goodput_rps": 25.0,
    # Figure L's connection ladder: the event-driven core must hold the
    # 4096-connection rung and complete at least 0.9x the threaded
    # core's best-point goodput while doing so (measured ~1.1-1.2x; the
    # floor leaves noise room without letting the claim rot).
    "aio_ladder_connections": 4096.0,
    "aio_vs_threaded_goodput": 0.9,
}

#: Fixed bounds for the streaming-pipeline pins that
#: ``benchmarks/bench_stream.py`` writes to ``stream.json`` (Figure S).
#: The streamed exchange's peak Python-heap allocation must stay a few
#: transfer chunks regardless of message size, the buffered baseline must
#: keep materializing (or the comparison measures nothing), buffered TTFB
#: must stay >= 5x streamed at 64 MiB, and per-chunk signing may cost
#: bounded throughput only.  Keep in sync with the constants at the top
#: of that module.
STREAM_CEILINGS = {
    "streamed_peak_over_chunk": 4.0,
    "signed_total_over_unsigned": 6.0,
}
STREAM_FLOORS = {
    "ttfb_ratio_64mib": 5.0,
    "buffered_peak_over_payload": 1.0,
}

#: Fixed bounds for the federated data-plane pins that
#: ``benchmarks/bench_fed.py`` writes to ``fed.json`` (Figure F).  A
#: 3-node federation must sustain >= 1.5x a saturated single node's
#: goodput (measured ~2.3x), and a warm content-addressed cache hit —
#: which makes zero upstream exchanges — must stay under a loose
#: absolute ceiling (measured ~70 us, dominated by encoding the request
#: for its digest).  Keep in sync with the constants at the top of that
#: module.
FED_CEILINGS = {
    "cache_hit_us": 300.0,
}
FED_FLOORS = {
    "fed_vs_single_goodput": 1.5,
}


def load(path: pathlib.Path) -> dict | None:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"bench_guard: cannot read {path}: {exc}")
        return None


def check_hotpath_ceilings(current: dict) -> list[str]:
    """Check hotpath.json's absolute pins against their fixed ceilings."""
    measured = current.get("measured")
    if measured is None:
        return [
            f"hotpath.measured: missing from {CURRENT.name} — rerun "
            "benchmarks/bench_hotpath.py to produce the warm_decode_us pin"
        ]
    failures = []
    for name, ceiling in HOTPATH_CEILINGS.items():
        value = measured.get(name)
        if value is None:
            failures.append(f"hotpath.{name}: missing from {CURRENT.name}")
            continue
        verdict = "ok" if value <= ceiling else "EXCEEDED"
        print(
            f"bench_guard: {name:>28} current {value:8.3f}  "
            f"ceiling {ceiling:8.3f}  {verdict}"
        )
        if value > ceiling:
            failures.append(f"hotpath.{name}: {value:.3f} exceeds ceiling {ceiling:.3f}")
    return failures


def check_obs_ceilings() -> list[str]:
    """Check obs.json against its fixed ceilings; [] when absent or ok."""
    results = load(OBS_RESULTS)
    if results is None or "measured" not in results:
        print(
            f"bench_guard: no telemetry results at {OBS_RESULTS.name} — skipping "
            "(run PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest "
            "benchmarks/bench_obs.py -q to produce them)"
        )
        return []
    failures = []
    for name, ceiling in OBS_CEILINGS.items():
        value = results["measured"].get(name)
        if value is None:
            failures.append(f"obs.{name}: missing from {OBS_RESULTS.name}")
            continue
        verdict = "ok" if value <= ceiling else "EXCEEDED"
        print(
            f"bench_guard: {name:>28} current {value:8.3f}  "
            f"ceiling {ceiling:8.3f}  {verdict}"
        )
        if value > ceiling:
            failures.append(f"obs.{name}: {value:.3f} exceeds ceiling {ceiling:.3f}")
    return failures


def check_serve_pins() -> list[str]:
    """Check serve.json against its fixed bounds; [] when absent or ok."""
    results = load(SERVE_RESULTS)
    if results is None or "measured" not in results:
        print(
            f"bench_guard: no serving results at {SERVE_RESULTS.name} — skipping "
            "(run PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest "
            "benchmarks/bench_serve.py -q to produce them)"
        )
        return []
    failures = []
    bounds = [(name, limit, "ceiling") for name, limit in SERVE_CEILINGS.items()]
    bounds += [(name, limit, "floor") for name, limit in SERVE_FLOORS.items()]
    for name, limit, kind in bounds:
        value = results["measured"].get(name)
        if value is None:
            failures.append(f"serve.{name}: missing from {SERVE_RESULTS.name}")
            continue
        ok = value <= limit if kind == "ceiling" else value >= limit
        print(
            f"bench_guard: {name:>28} current {value:10.3f}  "
            f"{kind} {limit:8.3f}  {'ok' if ok else 'VIOLATED'}"
        )
        if not ok:
            relation = "exceeds ceiling" if kind == "ceiling" else "fell below floor"
            failures.append(f"serve.{name}: {value:.3f} {relation} {limit:.3f}")
    return failures


def check_stream_pins() -> list[str]:
    """Check stream.json against its fixed bounds; [] when absent or ok."""
    results = load(STREAM_RESULTS)
    if results is None or "measured" not in results:
        print(
            f"bench_guard: no streaming results at {STREAM_RESULTS.name} — skipping "
            "(run PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest "
            "benchmarks/bench_stream.py -q to produce them)"
        )
        return []
    failures = []
    bounds = [(name, limit, "ceiling") for name, limit in STREAM_CEILINGS.items()]
    bounds += [(name, limit, "floor") for name, limit in STREAM_FLOORS.items()]
    for name, limit, kind in bounds:
        value = results["measured"].get(name)
        if value is None:
            failures.append(f"stream.{name}: missing from {STREAM_RESULTS.name}")
            continue
        ok = value <= limit if kind == "ceiling" else value >= limit
        print(
            f"bench_guard: {name:>28} current {value:10.3f}  "
            f"{kind} {limit:8.3f}  {'ok' if ok else 'VIOLATED'}"
        )
        if not ok:
            relation = "exceeds ceiling" if kind == "ceiling" else "fell below floor"
            failures.append(f"stream.{name}: {value:.3f} {relation} {limit:.3f}")
    return failures


def check_fed_pins() -> list[str]:
    """Check fed.json against its fixed bounds; [] when absent or ok."""
    results = load(FED_RESULTS)
    if results is None or "measured" not in results:
        print(
            f"bench_guard: no federation results at {FED_RESULTS.name} — skipping "
            "(run PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest "
            "benchmarks/bench_fed.py -q to produce them)"
        )
        return []
    failures = []
    bounds = [(name, limit, "ceiling") for name, limit in FED_CEILINGS.items()]
    bounds += [(name, limit, "floor") for name, limit in FED_FLOORS.items()]
    for name, limit, kind in bounds:
        value = results["measured"].get(name)
        if value is None:
            failures.append(f"fed.{name}: missing from {FED_RESULTS.name}")
            continue
        ok = value <= limit if kind == "ceiling" else value >= limit
        print(
            f"bench_guard: {name:>28} current {value:10.3f}  "
            f"{kind} {limit:8.3f}  {'ok' if ok else 'VIOLATED'}"
        )
        if not ok:
            relation = "exceeds ceiling" if kind == "ceiling" else "fell below floor"
            failures.append(f"fed.{name}: {value:.3f} {relation} {limit:.3f}")
    return failures


def main(argv: list[str]) -> int:
    check_only = "--check" in argv
    reset = "--reset" in argv

    current = load(CURRENT)
    if current is None or "pinned" not in current:
        print(
            f"bench_guard: no current results at {CURRENT} — run\n"
            "  PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest "
            "benchmarks/bench_hotpath.py -q"
        )
        return 1

    baseline = None if reset else load(BASELINE)
    if baseline is not None and baseline.get("quick") != current.get("quick"):
        # quick and full runs use different size sweeps; their pinned
        # ratios come from the same smallest size, but cross-mode noise
        # profiles differ — only compare like against like
        print(
            "bench_guard: baseline was recorded in "
            f"{'quick' if baseline.get('quick') else 'full'} mode, current run is "
            f"{'quick' if current.get('quick') else 'full'} — reseeding baseline"
        )
        baseline = None
    if baseline is None or "pinned" not in (baseline or {}):
        if check_only:
            print("bench_guard: no baseline; --check mode leaves it unseeded")
            return 0
        BASELINE.write_text(json.dumps(current, indent=2) + "\n")
        print(f"bench_guard: baseline seeded from current run -> {BASELINE.name}")
        return 0

    failures = []
    for name, base_value in baseline["pinned"].items():
        value = current["pinned"].get(name)
        if value is None:
            failures.append(f"{name}: missing from current run (baseline {base_value:.2f})")
            continue
        floor = base_value * ALLOWED_FRACTION
        verdict = "ok" if value >= floor else "REGRESSED"
        print(
            f"bench_guard: {name:>20} current {value:6.2f}x  "
            f"baseline {base_value:6.2f}x  floor {floor:6.2f}x  {verdict}"
        )
        if value < floor:
            failures.append(
                f"{name}: {value:.2f}x fell >25% below baseline {base_value:.2f}x"
            )

    failures.extend(check_hotpath_ceilings(current))
    failures.extend(check_obs_ceilings())
    failures.extend(check_serve_pins())
    failures.extend(check_stream_pins())
    failures.extend(check_fed_pins())

    if failures:
        print("bench_guard: FAIL")
        for line in failures:
            print(f"  - {line}")
        return 1

    if not check_only:
        # roll the baseline forward so the guard always compares against
        # the previous accepted run, not a stale high-water mark
        BASELINE.write_text(json.dumps(current, indent=2) + "\n")
    print("bench_guard: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
