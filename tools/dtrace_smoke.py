#!/usr/bin/env python
"""Distributed-tracing smoke test for the verify flow.

Runs the cross-process tracing demo (:mod:`repro.harness.dtrace`) against
both serving cores and asserts the assembled trace holds: one trace id
end to end, server spans parented under the client's wire spans via the
``X-Repro-Trace`` header, non-negative wire time, the client's segment
charges reconciling to its reported total, and a RED histogram exemplar
naming the trace.  Exit 0 on success, 1 with a diagnostic on the first
broken invariant.

Seconds, not minutes: this is a wiring check, not a benchmark.
"""

import sys

sys.path.insert(0, "src")

from repro.harness.dtrace import run_distributed_trace_demo  # noqa: E402


def main() -> int:
    failed = False
    for core in ("threaded", "aio"):
        result = run_distributed_trace_demo(core=core)
        for problem in result["problems"]:
            print(f"dtrace_smoke[{core}]: PROBLEM: {problem}")
        print(
            f"dtrace_smoke[{core}]: trace {result['trace_id']} "
            f"links {len(result['join']['links'])} "
            f"wire {result['wire_seconds'] * 1e3:.3f}ms "
            f"[{'OK' if result['ok'] else 'FAIL'}]"
        )
        failed = failed or not result["ok"]

    # the streamed pipeline's chunk markers ride the same trace
    result = run_distributed_trace_demo(core="threaded", streamed_markers=True)
    for problem in result["problems"]:
        print(f"dtrace_smoke[stream]: PROBLEM: {problem}")
    print(
        f"dtrace_smoke[stream]: first/last chunk events present "
        f"[{'OK' if result['ok'] else 'FAIL'}]"
    )
    failed = failed or not result["ok"]

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
