#!/usr/bin/env python
"""Federated data-plane smoke test for the verify flow.

Spawns a real 3-process cluster (``repro.fed.node`` on ephemeral TCP
ports, addresses handed over atomically — no sleep-polling), then
asserts the properties the federation exists for:

* every node answers its readiness probe before any load is offered;
* a warm cache hit is served with **zero** upstream exchanges (checked
  against the balancer's upstream request counter);
* one node killed abruptly (SIGKILL) mid-load loses nothing: the
  closed-loop accounting stays exact with zero failures, the failover
  counter moves, and the dead node's circuit opens.

Seconds, not minutes: this is a wiring check, not a benchmark.  Exit 0
on success, 1 with a diagnostic on the first broken invariant.
"""

import sys
import threading

sys.path.insert(0, "src")

from repro.core.envelope import SoapEnvelope  # noqa: E402
from repro.fed import (  # noqa: E402
    Balancer,
    CachingClient,
    FederatedClient,
    LeastOutstandingPolicy,
    ResponseCache,
)
from repro.fed.balancer import CIRCUIT_CLOSED  # noqa: E402
from repro.fed.node import spawn_nodes  # noqa: E402
from repro.loadgen import closed_loop  # noqa: E402
from repro.xdm import element, leaf  # noqa: E402

CLIENTS = 6
REQUESTS_PER_CLIENT = 20
KILL_AFTER = 30  # offered requests before node-1 is SIGKILLed
HOT_KEYS = 5  # distinct payloads, so most requests are repeats


def fail(message: str) -> None:
    print(f"fed_smoke: FAIL — {message}")
    sys.exit(1)


def echo(n: int) -> SoapEnvelope:
    return SoapEnvelope.wrap(element("Echo", leaf("n", n, "int")))


def main() -> None:
    nodes = spawn_nodes(3, workers=2, queue_depth=16, blob_size=1 << 12)
    try:
        balancer = Balancer(
            [node.replica() for node in nodes],
            policy=LeastOutstandingPolicy(),
            breaker_threshold=1,
            breaker_cooldown=5.0,
        )
        verdicts = balancer.probe_all(timeout=3.0)
        if set(verdicts.values()) != {"ready"}:
            fail(f"probe before load: {verdicts}")
        print(f"fed_smoke: 3 nodes up, probes {verdicts}")

        cache = ResponseCache(ttl_seconds=None)
        calls = [0]
        lock = threading.Lock()
        kill = threading.Event()

        def killer():
            kill.wait(timeout=30)
            nodes[1].kill()  # SIGKILL: abrupt death, in-flight work lost

        killer_thread = threading.Thread(target=killer, daemon=True)
        killer_thread.start()

        def call_factory():
            client = CachingClient(FederatedClient(balancer), cache)

            def call(index: int):
                with lock:
                    calls[0] += 1
                    if calls[0] == KILL_AFTER:
                        kill.set()
                client.call(echo(index % HOT_KEYS))

            call.close = client.close
            return call

        result = closed_loop(
            call_factory, clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT
        )
        kill.set()
        killer_thread.join(timeout=30)

        offered = CLIENTS * REQUESTS_PER_CLIENT
        if result.offered != offered:
            fail(f"offered {result.offered} != {offered}")
        if result.completed + result.shed + result.failed != result.offered:
            fail(
                f"accounting broken: {result.offered} != {result.completed} "
                f"+ {result.shed} + {result.failed}"
            )
        if result.failed:
            fail(f"{result.failed} exchanges lost to the node kill")
        print(
            f"fed_smoke: node-1 killed mid-load, offered {result.offered} = "
            f"completed {result.completed} + shed {result.shed} + failed 0"
        )

        if cache.hits == 0:
            fail("no cache hits despite repeated payloads")
        # the direct warm-hit proof: one repeat, zero upstream movement
        upstream_before = balancer.upstream_requests
        probe_client = CachingClient(FederatedClient(balancer), cache)
        try:
            probe_client.call(echo(0))
        finally:
            probe_client.close()
        if balancer.upstream_requests != upstream_before:
            fail("warm cache hit made an upstream exchange")
        print(
            f"fed_smoke: cache {cache.hits} hits / {cache.misses} misses, "
            "warm hit made zero upstream exchanges"
        )

        # The cache may have absorbed every request after the kill, in
        # which case the dead node was never retried and its breaker never
        # tripped.  Unique payloads bypass the cache; least-outstanding
        # rotates onto the permanently-idle dead node within a few calls,
        # trips its breaker, and fails over to a survivor.
        direct = FederatedClient(balancer)
        try:
            for extra in range(12):
                direct.call(echo(HOT_KEYS + 1 + extra))
                if balancer.state("fed-node-1").circuit != CIRCUIT_CLOSED:
                    break
        finally:
            direct.close()

        snapshot = balancer.snapshot()
        dead = snapshot["fed-node-1"]
        if dead["circuit"] == CIRCUIT_CLOSED and dead["live"]:
            fail(f"killed node never gated out: {dead}")
        failovers = balancer.metrics.counter("fed_failovers_total").snapshot()
        if failovers < 1:
            fail("no failover recorded despite the kill")
        print(
            f"fed_smoke: {failovers} failovers, node-1 "
            f"circuit={dead['circuit']} live={dead['live']}"
        )
    finally:
        for node in nodes:
            node.stop()

    print("fed_smoke: PASS")


if __name__ == "__main__":
    main()
