#!/usr/bin/env python
"""Repo lint step for the verify flow.

Prefers ``ruff check`` (configured in ``pyproject.toml``) when the tool is
installed.  The container image does not ship ruff, so the default path is
a stdlib AST checker covering the failure mode growth PRs actually
introduce: dead imports left behind by refactors.  Usage::

    python tools/lint.py [paths...]     # default: src tests benchmarks tools

Repo-specific rules always run (even when ruff handles the generic
lint) — they confine the concurrency machinery to its designated homes:

* inside ``src/repro/serve`` only ``pool.py`` may spawn threads.  The
  serving runtime's whole design is that every unit of work flows
  through the bounded :class:`WorkerPool`; a stray ``threading.Thread``
  anywhere else in the package would reintroduce exactly the unbounded
  concurrency the subsystem exists to prevent.
* inside ``src/repro`` only ``transport/aio.py`` may import
  ``selectors``.  The event loop is a singleton discipline: a second
  selector loop hiding elsewhere would split readiness handling across
  owners and defeat the one-loop invariant the aio module documents.
* inside ``src/repro/transport`` only ``aio.py`` (its loop thread) and
  ``http/server.py`` (the threaded core) may reference
  ``threading.Thread`` — transport code must not grow ad-hoc threads.
* inside ``src/repro`` only ``fed/balancer.py`` may define
  ``choose_replica`` — replica-selection policy is one pluggable
  surface; a routing brain elsewhere would bypass the balancer's
  failover, circuit breaking and metrics.

Exit status 0 = clean, 1 = findings, matching ruff's convention so the
verify flow can chain it after the tier-1 pytest run.
"""

from __future__ import annotations

import ast
import os
import re
import subprocess
import sys

DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")

#: Imports that exist for their side effects or for re-export and are
#: legitimately never referenced by name.
IGNORED_MODULES = {"__future__"}


def try_ruff(paths: list[str]) -> int | None:
    """Run ruff if importable; None means unavailable (fall back)."""
    try:
        import ruff  # noqa: F401 - probe only
    except ImportError:
        return None
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", *paths], check=False
    )
    return proc.returncode


def _bound_names(node: ast.Import | ast.ImportFrom):
    """(bound name, reported module) pairs one import statement binds."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            yield bound, alias.name
    else:
        if node.module in IGNORED_MODULES:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            yield alias.asname or alias.name, f"{node.module}.{alias.name}"


def dead_imports(path: str) -> list[tuple[int, str]]:
    """``(line, message)`` findings for one python file."""
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"syntax error: {exc.msg}")]

    exported: set[str] = set()
    used: set[str] = set()
    strings: list[str] = []
    imports: list[tuple[int, str, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for bound, module in _bound_names(node):
                imports.append((node.lineno, bound, module))
        elif isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            strings.append(node.value)
        elif isinstance(node, ast.Attribute):
            pass  # the base is an ast.Name, already collected
        elif (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            exported.update(
                c.value for c in node.value.elts if isinstance(c, ast.Constant)
            )
    findings = []
    for lineno, bound, module in imports:
        if bound.startswith("_"):
            continue
        if bound in used or bound in exported:
            continue
        if os.path.basename(path) == "__init__.py":
            # facades re-export by importing; only flag when an __all__
            # exists and omits the name
            if not exported:
                continue
        # names referenced inside string constants count as used: string
        # annotations ("Iterable[Node] | None"), doctest/docstring examples
        # (np.arange(...)), and Sphinx roles all bind textually
        pattern = re.compile(rf"\b{re.escape(bound)}\b")
        if any(pattern.search(s) for s in strings):
            continue
        findings.append((lineno, f"unused import: {module} (bound as {bound!r})"))
    return findings


def _is_serve_module(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(a == "repro" and b == "serve" for a, b in zip(parts, parts[1:]))


def serve_thread_findings(path: str) -> list[tuple[int, str]]:
    """Flag thread spawning in ``repro.serve`` outside the pool module.

    Catches both spellings — ``threading.Thread(...)`` and
    ``from threading import Thread`` — at any position (call, alias,
    attribute), since holding a reference is as suspect as calling it.
    """
    if not _is_serve_module(path) or os.path.basename(path) == "pool.py":
        return []
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # dead_imports already reports the syntax error
    findings = []
    message = (
        "thread spawning in repro.serve is reserved to pool.py "
        "(route work through WorkerPool instead)"
    )
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "Thread"
            and isinstance(node.value, ast.Name)
            and node.value.id == "threading"
        ):
            findings.append((node.lineno, message))
        elif isinstance(node, ast.ImportFrom) and node.module == "threading":
            if any(alias.name == "Thread" for alias in node.names):
                findings.append((node.lineno, message))
    return findings


def _repro_relative(path: str) -> str | None:
    """Path relative to the ``repro`` package root, or None if outside it."""
    parts = os.path.normpath(path).split(os.sep)
    if "repro" not in parts:
        return None
    return "/".join(parts[parts.index("repro") + 1 :])


#: Modules allowed to import ``selectors`` (relative to src/repro).
SELECTOR_HOMES = {"transport/aio.py"}

#: Transport modules allowed to reference ``threading.Thread``.
TRANSPORT_THREAD_HOMES = {"transport/aio.py", "transport/http/server.py"}


def concurrency_findings(path: str) -> list[tuple[int, str]]:
    """Confine ``selectors`` imports and transport thread spawning.

    Same spirit as :func:`serve_thread_findings`: the event loop and the
    per-connection threads are deliberate, documented singletons; this
    rule keeps future code from quietly growing parallel ones.
    """
    rel = _repro_relative(path)
    if rel is None:
        return []
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # dead_imports already reports the syntax error
    findings = []
    selectors_ok = rel in SELECTOR_HOMES
    thread_rule_applies = rel.startswith("transport/") and rel not in TRANSPORT_THREAD_HOMES
    selector_message = (
        "selectors usage in repro is reserved to transport/aio.py "
        "(the one event loop; register with it instead of starting another)"
    )
    thread_message = (
        "thread spawning in repro.transport is reserved to aio.py and "
        "http/server.py (their serving loops are the only transport threads)"
    )
    for node in ast.walk(tree):
        if not selectors_ok and isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] == "selectors" for alias in node.names):
                findings.append((node.lineno, selector_message))
        elif not selectors_ok and isinstance(node, ast.ImportFrom):
            if node.module is not None and node.module.split(".")[0] == "selectors":
                findings.append((node.lineno, selector_message))
        if thread_rule_applies:
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "Thread"
                and isinstance(node.value, ast.Name)
                and node.value.id == "threading"
            ):
                findings.append((node.lineno, thread_message))
            elif isinstance(node, ast.ImportFrom) and node.module == "threading":
                if any(alias.name == "Thread" for alias in node.names):
                    findings.append((node.lineno, thread_message))
    return findings


#: The one module allowed to speak chunked Transfer-Encoding on the wire.
CHUNKED_FRAMING_HOME = "transport/http/messages.py"


def chunked_framing_findings(path: str) -> list[tuple[int, str]]:
    """Confine chunked-transfer framing to the HTTP message codec.

    Chunked encoding has sharp edges (request smuggling via TE+CL, hex
    size lines, trailer sections); every one of them is handled once in
    ``transport/http/messages.py``.  Code elsewhere that touches the
    ``Transfer-Encoding`` header by name, or parses hex the way a chunk
    size line is parsed, is growing a second framing implementation —
    route it through ``body_framing``/``ChunkedDecoder`` instead.
    """
    rel = _repro_relative(path)
    if rel is None or rel == CHUNKED_FRAMING_HOME:
        return []
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # dead_imports already reports the syntax error
    findings = []
    header_message = (
        "chunked transfer framing is reserved to transport/http/messages.py; "
        "use body_framing()/ChunkedDecoder/iter_wire() instead of touching "
        "the Transfer-Encoding header directly"
    )
    hex_message = (
        "hex chunk-size parsing is reserved to transport/http/messages.py "
        "(ChunkedDecoder owns the chunk-line grammar)"
    )
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value.lower() == "transfer-encoding"
        ):
            findings.append((node.lineno, header_message))
        elif (
            rel.startswith("transport/")
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "int"
            and len(node.args) == 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value == 16
        ):
            findings.append((node.lineno, hex_message))
    return findings


#: The one module allowed to name the trace-propagation HTTP header.
TRACE_HEADER_HOME = "obs/propagation.py"


def trace_header_findings(path: str) -> list[tuple[int, str]]:
    """Confine the ``X-Repro-Trace`` header name to ``obs/propagation.py``.

    Every on-the-wire representation of a trace context lives in one
    module — its strict parser (length caps, duplicate rejection, hex
    validation) is the only defence against hostile header values.  Code
    elsewhere naming the header is growing a second inject/extract path;
    route it through ``propagation.inject_headers``/``extract_headers``.
    """
    rel = _repro_relative(path)
    if rel is None or rel == TRACE_HEADER_HOME:
        return []
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # dead_imports already reports the syntax error
    message = (
        "the trace-propagation header is reserved to obs/propagation.py; "
        "use propagation.inject_headers()/extract_headers() instead of "
        "naming X-Repro-Trace directly"
    )
    return [
        (node.lineno, message)
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value.lower() == "x-repro-trace"
    ]


#: The one module allowed to define replica-selection policy logic.
POLICY_HOME = "fed/balancer.py"


def replica_policy_findings(path: str) -> list[tuple[int, str]]:
    """Confine replica-selection policy logic to ``fed/balancer.py``.

    The balancer's contract is that *every* routing decision flows
    through one pluggable policy surface — ``choose_replica`` on a
    policy object — so failover, circuit breaking and metrics stay
    consistent no matter which policy runs.  A ``choose_replica``
    defined elsewhere in ``src/repro`` is a second routing brain the
    balancer cannot see; implement it as a policy class in
    ``fed/balancer.py`` instead.
    """
    rel = _repro_relative(path)
    if rel is None or rel == POLICY_HOME:
        return []
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # dead_imports already reports the syntax error
    message = (
        "replica-selection policy logic is reserved to fed/balancer.py; "
        "implement choose_replica as a policy class there and pass it to "
        "Balancer(policy=...)"
    )
    return [
        (node.lineno, message)
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name == "choose_replica"
    ]


def iter_python_files(paths: list[str]):
    for root in paths:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if not d.startswith((".", "__pycache__"))]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def main(argv: list[str]) -> int:
    paths = argv or [p for p in DEFAULT_PATHS if os.path.exists(p)]

    # the repo-specific rules run unconditionally — ruff has no analogue
    serve_total = 0
    for path in iter_python_files(paths):
        for lineno, message in serve_thread_findings(path):
            print(f"{path}:{lineno}: {message}")
            serve_total += 1
        for lineno, message in concurrency_findings(path):
            print(f"{path}:{lineno}: {message}")
            serve_total += 1
        for lineno, message in chunked_framing_findings(path):
            print(f"{path}:{lineno}: {message}")
            serve_total += 1
        for lineno, message in trace_header_findings(path):
            print(f"{path}:{lineno}: {message}")
            serve_total += 1
        for lineno, message in replica_policy_findings(path):
            print(f"{path}:{lineno}: {message}")
            serve_total += 1

    ruff_status = try_ruff(paths)
    if ruff_status is not None:
        return 1 if serve_total else ruff_status

    total = serve_total
    for path in iter_python_files(paths):
        for lineno, message in dead_imports(path):
            print(f"{path}:{lineno}: {message}")
            total += 1
    if total:
        print(f"{total} finding(s)", file=sys.stderr)
        return 1
    print(f"lint clean (ast dead-import checker; ruff not installed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
