#!/usr/bin/env python
"""Streaming large-message pipeline smoke test for the verify flow.

Pushes a ~64 MiB typed array through the full streaming data plane —
sink-driven :class:`BXSAStreamWriter` behind a bounded producer queue,
HTTP/1.1 chunked Transfer-Encoding through the threaded server and
client over real loopback TCP, per-chunk HMAC signing and in-flight
verification, incremental :class:`StreamDecoder` consumption — and
asserts the two properties the pipeline exists for:

* **bounded memory**: the whole exchange (client + server + producer
  share the process) must peak under a fixed budget of transfer chunks
  on the Python heap (tracemalloc, which sees NumPy buffers), far below
  the message size;
* **verified content**: the decoded array's checksum must equal the
  arithmetic expectation, unsigned and signed — and a tampered chunk
  must be *rejected*, proving the signature layer is actually in the
  path.

Seconds, not minutes: this is a wiring check, not a benchmark.  Exit 0
on success, 1 with a diagnostic on the first broken invariant.
"""

import sys

sys.path.insert(0, "src")

from repro.core.security import (  # noqa: E402
    ChunkSignatureError,
    sign_stream,
    verify_stream,
)
from repro.harness.figure_stream import (  # noqa: E402
    _KEY,
    DEFAULT_CHUNK_BYTES,
    MIB,
    _consume,
    _streamed_pieces,
    expected_checksum,
    make_handler,
)
from repro.harness.measure import traced_peak_bytes  # noqa: E402
from repro.transport.http import HttpClient, HttpServer  # noqa: E402
from repro.transport.sockets import TcpListener, connect_tcp  # noqa: E402

SIZE_MIB = 64
#: Peak-heap budget for one streamed exchange, in transfer chunks — the
#: same bound Figure S checks (measured ~3.3; the message is 64 chunks).
PEAK_BUDGET_CHUNKS = 4.0


def fail(message: str) -> None:
    print(f"stream_smoke: FAIL — {message}")
    sys.exit(1)


def main() -> None:
    listener = TcpListener()
    host, port = listener.address
    server = HttpServer(
        listener,
        make_handler(DEFAULT_CHUNK_BYTES, 1),
        name="stream-smoke",
        admin=False,
        stream_bodies=True,
    )
    n_items = SIZE_MIB * MIB // 4
    expected = expected_checksum(n_items)

    with server:
        client = HttpClient(lambda: connect_tcp(host, port), host=host)
        try:
            for mode in ("streamed", "signed"):
                def exchange(mode=mode):
                    response = client.request(
                        "GET", f"/pull/{SIZE_MIB}/{mode}", stream_response=True
                    )
                    if response.status != 200:
                        fail(f"{mode}: status {response.status}")
                    return _consume(
                        response.stream,
                        signed=(mode == "signed"),
                        chunk_bytes=DEFAULT_CHUNK_BYTES,
                    )

                peak, checksum = traced_peak_bytes(exchange)
                if checksum != expected:
                    fail(f"{mode}: checksum {checksum} != expected {expected}")
                budget = PEAK_BUDGET_CHUNKS * DEFAULT_CHUNK_BYTES
                if peak > budget:
                    fail(
                        f"{mode}: {SIZE_MIB} MiB exchange peaked at "
                        f"{peak / MIB:.1f} MiB heap (budget "
                        f"{budget / MIB:.1f} MiB) — the pipeline is "
                        "buffering the message somewhere"
                    )
                print(
                    f"stream_smoke: {mode:>8} {SIZE_MIB} MiB ok, "
                    f"peak {peak / MIB:.1f} MiB ({peak / DEFAULT_CHUNK_BYTES:.1f} chunks)"
                )
        finally:
            client.close()

    # tamper check without the network: flip one byte of the *signed*
    # wire mid-flow and the verifier must refuse — otherwise the signed
    # mode proves nothing
    def tampered():
        pieces = _streamed_pieces(MIB // 4, DEFAULT_CHUNK_BYTES // 4, 1)
        for i, piece in enumerate(sign_stream(pieces, _KEY)):
            piece = bytearray(piece)
            if i == 1:
                piece[len(piece) // 2] ^= 0x01
            yield bytes(piece)

    try:
        for _ in verify_stream(tampered(), _KEY):
            pass
    except ChunkSignatureError:
        print("stream_smoke: tampered chunk rejected")
    else:
        fail("tampered chunk sailed through signature verification")

    print("stream_smoke: PASS")


if __name__ == "__main__":
    main()
