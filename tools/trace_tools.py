#!/usr/bin/env python3
"""Convenience shim: run the trace-analysis CLI without setting PYTHONPATH.

``python tools/trace_tools.py critical-path traces/`` is exactly
``PYTHONPATH=src python -m repro.obs.analyze critical-path traces/``.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.obs.analyze import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
