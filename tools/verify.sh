#!/bin/sh
# One-command verification: lint, tier-1 tests, benchmark regression guard.
#
#   sh tools/verify.sh          # the full gate
#   sh tools/verify.sh --fast   # skip the bench guard (lint + tests only)
#
# Exits non-zero on the first failing step.  The bench guard runs in
# --check mode: it never reseeds or rolls the baseline, so this script is
# safe to run on any checkout.

set -e
cd "$(dirname "$0")/.."

echo "== lint =="
python tools/lint.py

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q

echo "== event-driven serving smoke =="
python tools/aio_smoke.py

echo "== stream pipeline smoke =="
python tools/stream_smoke.py

echo "== distributed trace smoke =="
python tools/dtrace_smoke.py

echo "== federated data-plane smoke =="
python tools/fed_smoke.py

if [ "$1" != "--fast" ]; then
    echo "== hot-path bench smoke =="
    PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_hotpath.py -q

    echo "== serving-runtime bench smoke =="
    PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_serve.py -q

    echo "== streaming-pipeline bench smoke =="
    PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_stream.py -q

    echo "== federated data-plane bench smoke =="
    PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_fed.py -q

    echo "== observability bench smoke =="
    PYTHONPATH=src:. REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_obs.py -q \
        -k "TelemetryOverhead or PropagationOverhead"

    echo "== bench guard =="
    python tools/bench_guard.py --check
fi

echo "verify: PASS"
